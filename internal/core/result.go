package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/arrange"
	"repro/internal/colormap"
	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/reduce"
	"repro/internal/relevance"
	"repro/internal/render"
	"repro/internal/topk"
)

// Result is the outcome of running a visual feedback query.
type Result struct {
	Engine  *Engine
	Query   *query.Query
	Binding *query.Binding
	Space   *itemSpace
	Eval    *relevance.Result
	// N is the totality of data items considered (rows, or cross-product
	// pairs for multi-table queries) — the "# objects" panel field.
	N int
	// combined is the normalized combined distance per item,
	// materialized lazily on the rank-before-scale path (the Combined
	// accessor); the Relevance accessor materializes its inverse on
	// demand.
	combined []float64
	// Order maps display rank → item index (ascending combined
	// distance, i.e. descending relevance); sorted holds the distances
	// in rank order. Order is always a permutation of [0, N), but on
	// the default selection path only the first rankedK entries (at
	// least the display budget) are exactly ranked — the remainder is
	// unordered. Use TopK to obtain the head of the ranking at any
	// depth, or Options.FullSort for a fully sorted Order.
	Order  []int
	sorted []float64
	// rankedK is how many leading entries of Order/sorted are in exact
	// relevance order (N when fully sorted).
	rankedK int
	// sortedReordered marks sorted as re-filtered into display order by
	// the 2D-quantile refinement (no longer ascending).
	sortedReordered bool
	// Displayed is the number of ranked items that fit the display after
	// the section 5.1 reduction — the "# displayed" panel field.
	Displayed int
	// Timings holds the per-stage wall-clock breakdown of this run.
	Timings StageTimings

	root   *relevance.Node
	mu     sync.Mutex // guards nodeOf/preds during build, rank extension and relevance memoization after
	nodeOf map[query.Expr]*relevance.Node
	preds  map[*query.Cond]*predicateData
	cells  []arrange.Point       // rank → cell
	rankAt map[arrange.Point]int // cell → rank
	rankOf map[int]int           // item index → rank

	// relevance memoizes the Relevance accessor.
	relevance []float64
	// cache and cacheSig are set on RunCached runs: the session-level
	// predicate cache serving this run and the item-space fingerprint
	// its keys embed. keys builds every structural cache key of the run
	// from that fingerprint (see runKeys), and leafID records each
	// relevance leaf's full cache key — the content-precise identity the
	// interior-normalization signatures embed in place of the label.
	cache    *RunCache
	cacheSig string
	keys     runKeys
	leafID   map[*relevance.Node]string

	// checkpoint is the run's cancellation poll (nil on uncanceled
	// runs): the tree build polls it at node entry and between distance
	// chunks, so a request deadline interrupts the Distances stage too.
	checkpoint func() error
}

// poll reports the run's cancellation verdict (nil-safe).
func (r *Result) poll() error {
	if r.checkpoint == nil {
		return nil
	}
	return r.checkpoint()
}

// Combined returns the normalized combined distance per item — the
// full n-sized scaled vector. On the default rank-before-scale path
// the engine never needs it (ranking happens on raw values, windows
// read only displayed ranks), so it materializes lazily on first use
// and is memoized; FullSort/Arrange2D runs have it eagerly. Like every
// vector of a cached run's Result, it is valid until the session's
// next recalculation. Safe for concurrent use. Prefer DistanceOfRank
// for ranked access — it never forces materialization.
func (r *Result) Combined() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.combinedLocked()
}

func (r *Result) combinedLocked() []float64 {
	if r.combined == nil {
		r.combined = r.Eval.MaterializeCombined()
	}
	return r.combined
}

// DistanceOfRank returns the combined (scaled) distance of the item at
// display rank k — res.Combined()[res.Order[k]] without materializing
// the combined vector. Valid for the exactly-ranked prefix (k below
// RankedK; display ranks always qualify); NaN outside it.
func (r *Result) DistanceOfRank(k int) float64 {
	if k < 0 || k >= r.rankedK {
		return math.NaN()
	}
	return r.sorted[k]
}

// RankedK reports how many leading entries of Order are exactly ranked
// (N under FullSort, at least the display budget otherwise).
func (r *Result) RankedK() int { return r.rankedK }

// Relevance returns the per-item relevance factors — "the relevance
// factor is determined as the inverse of that distance value" —
// materialized on first use and memoized. Dropping the eager
// materialization removes an unconditional n-sized allocation (8 MB at
// n = 1e6) from runs that only consume the ranking. Safe for
// concurrent use.
func (r *Result) Relevance() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.relevance == nil {
		r.relevance = relevance.RelevanceFactors(r.combinedLocked())
	}
	return r.relevance
}

// setNode records the relevance node of an expression; safe under
// concurrent sibling predicate builds.
func (r *Result) setNode(e query.Expr, n *relevance.Node) {
	r.mu.Lock()
	r.nodeOf[e] = n
	r.mu.Unlock()
}

// setPred records the predicate data of a condition; safe under
// concurrent sibling predicate builds.
func (r *Result) setPred(c *query.Cond, pd *predicateData) {
	r.mu.Lock()
	r.preds[c] = pd
	r.mu.Unlock()
}

// setLeafID records a leaf node's full cache key; safe under concurrent
// sibling predicate builds.
func (r *Result) setLeafID(n *relevance.Node, key string) {
	r.mu.Lock()
	if r.leafID == nil {
		r.leafID = make(map[*relevance.Node]string)
	}
	r.leafID[n] = key
	r.mu.Unlock()
}

// leafIDOf answers relevance.EvalOptions.LeafID: the leaf's full cache
// key, or empty (label fallback) for leaves built without one.
func (r *Result) leafIDOf(n *relevance.Node) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leafID[n]
}

// buildPlacement assigns window cells to the displayed ranks.
func (r *Result) buildPlacement() {
	opt := r.Engine.opt
	if opt.Arrangement == Arrange2D {
		r.build2DPlacement()
	} else {
		r.cells = arrange.Place(opt.GridW, opt.GridH, r.Displayed)
	}
	r.rankAt = make(map[arrange.Point]int, r.Displayed)
	r.rankOf = make(map[int]int, r.Displayed)
	for rank := 0; rank < r.Displayed && rank < len(r.cells); rank++ {
		if r.cells[rank] != arrange.Unplaced {
			r.rankAt[r.cells[rank]] = rank
		}
		r.rankOf[r.Order[rank]] = rank
	}
}

// build2DPlacement implements figure 1b: the signed distances of the two
// axis predicates give each item a quadrant; within quadrants items sit
// by rank from the center outward. When both axis predicates carry
// signed distances, the displayed set is refined with the combined
// two-dimensional α-quantiles of section 5.1, so both directions stay
// represented in the band around zero.
func (r *Result) build2DPlacement() {
	opt := r.Engine.opt
	sx := r.signedOf(opt.AxisX)
	sy := r.signedOf(opt.AxisY)
	if sx != nil && sy != nil && r.N > 0 {
		r.apply2DQuantiles(sx, sy)
	}
	items := make([]arrange.QuadItem, r.Displayed)
	for rank := 0; rank < r.Displayed; rank++ {
		item := r.Order[rank]
		items[rank] = arrange.QuadItem{SignX: signOf(sx, item), SignY: signOf(sy, item)}
	}
	r.cells = arrange.Quad2D(opt.GridW, opt.GridH, items)
}

// apply2DQuantiles refines the displayed set with the combined
// two-dimensional α-quantiles and reorders Order so the selected items
// (in relevance order) come first. Note that with Arrange2D, Order is
// therefore the display order, not a pure relevance ranking beyond the
// displayed prefix.
func (r *Result) apply2DQuantiles(sx, sy []float64) {
	p := float64(r.Displayed) / float64(r.N)
	in2D := reduce.Items2D(sx, sy, p)
	if len(in2D) == 0 {
		return
	}
	keep := make(map[int]bool, len(in2D))
	for _, item := range in2D {
		// Uncolorable items stay out of the display even when their
		// axis distances fall inside the bands.
		if !math.IsNaN(r.combined[item]) {
			keep[item] = true
		}
	}
	if len(keep) == 0 {
		return
	}
	newOrder := make([]int, 0, len(r.Order))
	for _, item := range r.Order {
		if keep[item] {
			newOrder = append(newOrder, item)
		}
	}
	for _, item := range r.Order {
		if !keep[item] {
			newOrder = append(newOrder, item)
		}
	}
	if len(keep) < r.Displayed {
		r.Displayed = len(keep)
	}
	r.Order = newOrder
	sorted := make([]float64, len(newOrder))
	for i, item := range newOrder {
		sorted[i] = r.combined[item]
	}
	r.sorted = sorted
	// sorted is now in DISPLAY order (band members first), not ascending
	// distance order — consumers that rely on monotone prefixes (the
	// Stats exact-match shortcut) must fall back to the full vector.
	r.sortedReordered = true
}

// signedOf finds the signed-distance vector of the predicate on the
// named attribute, or nil.
func (r *Result) signedOf(attr string) []float64 {
	if attr == "" {
		return nil
	}
	for c, pd := range r.preds {
		if c.Attr == attr || pd.Attr.Attr == attr || pd.Attr.Qualified() == attr {
			return pd.Signed
		}
	}
	return nil
}

func signOf(signed []float64, item int) int {
	if signed == nil || item >= len(signed) {
		return 0
	}
	v := signed[item]
	switch {
	case math.IsNaN(v) || v == 0:
		return 0
	case v < 0:
		return -1
	default:
		return 1
	}
}

// Stats summarizes the overall-result panel of figures 4/5.
type PanelStats struct {
	NumObjects   int     // # objects: totality of considered items
	NumDisplayed int     // # displayed
	PctDisplayed float64 // % displayed
	NumResults   int     // # of results: items fulfilling the query exactly
}

// Stats computes the overall panel fields. The exact-match count
// comes from the ranked prefix whenever the prefix provably contains
// every zero (its last entry is nonzero or NaN — zeros rank first, so
// none can hide beyond it); only a selection saturated with exact
// answers falls back to materializing the combined vector. Serving
// summaries therefore stay free of the n-wide scale pass the
// rank-before-scale path avoids.
func (r *Result) Stats() PanelStats {
	exact := 0
	if !r.sortedReordered && r.rankedK > 0 && r.sorted[r.rankedK-1] != 0 {
		// Monotone prefix (ascending, NaNs last): count the leading
		// zeros.
		prefix := r.sorted[:r.rankedK]
		exact = sort.Search(len(prefix), func(i int) bool { return prefix[i] != 0 })
	} else if r.rankedK > 0 || r.N > 0 {
		for _, d := range r.Combined() {
			if d == 0 {
				exact++
			}
		}
	}
	pct := 0.0
	if r.N > 0 {
		pct = float64(r.Displayed) / float64(r.N)
	}
	return PanelStats{
		NumObjects:   r.N,
		NumDisplayed: r.Displayed,
		PctDisplayed: pct,
		NumResults:   exact,
	}
}

// PredicateInfo carries the per-slider panel fields of section 4.3.
type PredicateInfo struct {
	Label  string
	Weight float64
	// MinDB/MaxDB: attribute extremes in the database, displayed
	// outside the slider spectrum.
	MinDB, MaxDB float64
	// FirstDisplayed/LastDisplayed: lowest and highest attribute value
	// among the visualized data items, displayed inside the spectrum.
	FirstDisplayed, LastDisplayed float64
	// QueryLo/QueryHi: the current query range.
	QueryLo, QueryHi float64
	// NumResults: items fulfilling this predicate exactly.
	NumResults int
	// Numeric reports whether the attribute fields are meaningful.
	Numeric bool
	// Kind is the bound attribute's datatype (valid when the predicate
	// is a simple condition); it selects the slider variant of
	// section 4.3.
	Kind dataset.Kind
	// Categories and SelectedCats describe the enumeration slider of
	// ordinal/nominal attributes: the category labels and which are
	// currently selected by the condition.
	Categories   []string
	SelectedCats []bool
}

// PredicateInfos returns slider info for every top-level selection
// predicate, in query order.
func (r *Result) PredicateInfos() []PredicateInfo {
	var out []PredicateInfo
	for _, p := range query.Predicates(r.Query.Where) {
		info := PredicateInfo{Label: p.Label(), Weight: p.Weight(),
			MinDB: math.NaN(), MaxDB: math.NaN(),
			FirstDisplayed: math.NaN(), LastDisplayed: math.NaN(),
			QueryLo: math.NaN(), QueryHi: math.NaN()}
		if node, ok := r.nodeOf[p]; ok {
			// Interior nodes (e.g. an OR part) have no raw leaf
			// distances; count exact answers on the evaluated vector.
			vec := r.Eval.Vec(node)
			if vec == nil {
				vec = node.Dists
			}
			for _, d := range vec {
				if d == 0 {
					info.NumResults++
				}
			}
		}
		if c, ok := p.(*query.Cond); ok {
			if pd, ok := r.preds[c]; ok {
				info.Kind = pd.Attr.Kind
				if pd.HasRange {
					info.Numeric = true
					info.MinDB, info.MaxDB = pd.MinDB, pd.MaxDB
					info.QueryLo, info.QueryHi = pd.Lo, pd.Hi
					first, last := math.Inf(1), math.Inf(-1)
					any := false
					for rank := 0; rank < r.Displayed; rank++ {
						v := pd.valueAt(r.Order[rank])
						if math.IsNaN(v) {
							continue
						}
						any = true
						first = math.Min(first, v)
						last = math.Max(last, v)
					}
					if any {
						info.FirstDisplayed, info.LastDisplayed = first, last
					} else {
						info.FirstDisplayed, info.LastDisplayed = math.NaN(), math.NaN()
					}
				}
				if pd.Attr.Kind == dataset.KindOrdinal || pd.Attr.Kind == dataset.KindNominal {
					info.Categories, info.SelectedCats = r.categorySelection(c, pd)
				}
			}
		}
		out = append(out, info)
	}
	return out
}

// colorFor maps a normalized distance to its display color.
func (r *Result) colorFor(norm float64) colormap.RGB {
	if math.IsNaN(norm) {
		return colormap.UncolorableColor
	}
	return r.Engine.opt.Map.AtNorm(norm / relevance.Scale)
}

// OverallWindow renders the overall-result window: rank k's cell gets
// the color of the k-th smallest combined distance, yielding the yellow
// center with spiral-shaped approximate answers of figure 1a.
func (r *Result) OverallWindow() *render.Window {
	opt := r.Engine.opt
	w := render.NewWindow("overall result", opt.GridW, opt.GridH, arrange.BlockSide(opt.PixelsPerItem))
	for rank := 0; rank < r.Displayed && rank < len(r.cells); rank++ {
		w.SetCell(r.cells[rank], r.colorFor(r.sorted[rank]))
	}
	return w
}

// WindowFor renders the window of one query part: the cells keep the
// overall ordering ("we do not sort the distances, but keep the same
// ordering of data items as in the overall result window") and show the
// part's own normalized distances.
func (r *Result) WindowFor(e query.Expr) (*render.Window, error) {
	node, ok := r.nodeOf[e]
	if !ok {
		return nil, fmt.Errorf("core: no window for expression %q", e.Label())
	}
	vec := r.Eval.Vec(node)
	if vec == nil {
		return nil, fmt.Errorf("core: expression %q not evaluated", e.Label())
	}
	opt := r.Engine.opt
	w := render.NewWindow(e.Label(), opt.GridW, opt.GridH, arrange.BlockSide(opt.PixelsPerItem))
	for rank := 0; rank < r.Displayed && rank < len(r.cells); rank++ {
		item := r.Order[rank]
		w.SetCell(r.cells[rank], r.colorFor(vec[item]))
	}
	return w, nil
}

// Windows returns the overall window followed by one window per
// top-level selection predicate — the visualization part of figure 4.
func (r *Result) Windows() ([]*render.Window, error) {
	out := []*render.Window{r.OverallWindow()}
	for _, p := range query.Predicates(r.Query.Where) {
		w, err := r.WindowFor(p)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// Image composes the windows into one image with the given column count
// (2 matches the paper's 2×2 layout for three predicates).
func (r *Result) Image(cols int) (*render.Image, error) {
	ws, err := r.Windows()
	if err != nil {
		return nil, err
	}
	return render.Compose(ws, cols, 6), nil
}

// categorySelection computes the enumeration-slider state of a
// categorical condition: the attribute's categories and which of them
// the condition currently selects.
func (r *Result) categorySelection(c *query.Cond, pd *predicateData) (labels []string, selected []bool) {
	t, err := r.Engine.cat.Table(pd.Attr.Table)
	if err != nil {
		return nil, nil
	}
	idx := t.Schema().Index(pd.Attr.Attr)
	if idx < 0 {
		return nil, nil
	}
	labels = append([]string(nil), t.Schema()[idx].Categories...)
	selected = make([]bool, len(labels))
	match := func(label string) bool {
		switch c.Op {
		case query.OpEq:
			return label == c.Value.S
		case query.OpNe:
			return label != c.Value.S
		case query.OpIn:
			for _, v := range c.List {
				if v.S == label {
					return true
				}
			}
			return false
		case query.OpGt, query.OpGe, query.OpLt, query.OpLe:
			// Ordinal comparisons select by rank.
			rank := indexOf(labels, label)
			target := indexOf(labels, c.Value.S)
			if rank < 0 || target < 0 {
				return false
			}
			switch c.Op {
			case query.OpGt:
				return rank > target
			case query.OpGe:
				return rank >= target
			case query.OpLt:
				return rank < target
			default:
				return rank <= target
			}
		default:
			return false
		}
	}
	for i, l := range labels {
		selected[i] = match(l)
	}
	return labels, selected
}

func indexOf(ss []string, s string) int {
	for i, v := range ss {
		if v == s {
			return i
		}
	}
	return -1
}

// SliderSpecs builds the query-modification sliders: each spectrum is
// "just a different arrangement of the colored distances" with the
// query range marked. The slider kind follows the attribute datatype
// (section 4.3): discrete ticks for integers, enumerations for
// ordinal/nominal attributes, continuous ranges otherwise.
func (r *Result) SliderSpecs() []render.SliderSpec {
	infos := r.PredicateInfos()
	specs := make([]render.SliderSpec, 0, len(infos))
	for _, info := range infos {
		s := render.SliderSpec{
			Title:    info.Label,
			Spectrum: r.Engine.opt.Map.Spectrum(128),
			MarkLo:   -1,
			MarkHi:   -1,
		}
		switch {
		case len(info.Categories) > 0:
			s.Kind = render.SliderEnumeration
			s.Labels = info.Categories
			s.Selected = info.SelectedCats
		case info.Kind == dataset.KindInt:
			s.Kind = render.SliderDiscrete
			if info.Numeric && info.MaxDB > info.MinDB {
				ticks := int(info.MaxDB - info.MinDB)
				if ticks > 32 {
					ticks = 32
				}
				if ticks < 2 {
					ticks = 2
				}
				s.Ticks = ticks
			}
		}
		if info.Numeric && info.MaxDB > info.MinDB {
			span := info.MaxDB - info.MinDB
			if !math.IsInf(info.QueryLo, 0) && !math.IsNaN(info.QueryLo) {
				s.MarkLo = clamp01((info.QueryLo - info.MinDB) / span)
			}
			if !math.IsInf(info.QueryHi, 0) && !math.IsNaN(info.QueryHi) {
				s.MarkHi = clamp01((info.QueryHi - info.MinDB) / span)
			}
			if info.Kind == dataset.KindTime {
				// Time attributes coerce to Unix seconds internally;
				// the slider caption shows readable instants.
				s.Caption = fmt.Sprintf("%s .. %s",
					time.Unix(int64(info.MinDB), 0).UTC().Format("2006-01-02 15:04"),
					time.Unix(int64(info.MaxDB), 0).UTC().Format("2006-01-02 15:04"))
			} else {
				s.Caption = fmt.Sprintf("%.4g .. %.4g", info.MinDB, info.MaxDB)
			}
			// A closed range doubles as a median±deviation slider (the
			// rightmost slider of figure 4).
			if s.MarkLo >= 0 && s.MarkHi >= 0 && s.Kind == render.SliderContinuous &&
				!math.IsInf(info.QueryLo, 0) && !math.IsInf(info.QueryHi, 0) {
				s.Median = (s.MarkLo + s.MarkHi) / 2
				s.Deviation = (s.MarkHi - s.MarkLo) / 2
			}
		}
		specs = append(specs, s)
	}
	return specs
}

func clamp01(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ItemAt returns the item index displayed at a window cell, for tuple
// selection (section 4.3).
func (r *Result) ItemAt(cell arrange.Point) (int, bool) {
	rank, ok := r.rankAt[cell]
	if !ok {
		return 0, false
	}
	return r.Order[rank], true
}

// CellOfItem returns the window cell of an item, if displayed.
func (r *Result) CellOfItem(item int) (arrange.Point, bool) {
	rank, ok := r.rankOf[item]
	if !ok || rank >= len(r.cells) {
		return arrange.Unplaced, false
	}
	c := r.cells[rank]
	return c, c != arrange.Unplaced
}

// SelectedTuple materializes the underlying row(s) of an item: one row
// for single-table queries, the left and right rows for cross-product
// items — the "selected tuple" panel field.
type SelectedTuple struct {
	Tables []string
	Rows   [][]dataset.Value
}

// Tuple returns the selected tuple for an item index.
func (r *Result) Tuple(item int) (SelectedTuple, error) {
	if item < 0 || item >= r.N {
		return SelectedTuple{}, fmt.Errorf("core: item %d out of range [0,%d)", item, r.N)
	}
	st := SelectedTuple{}
	if r.Space.pairs == nil {
		t := r.Space.tables[0]
		st.Tables = []string{t.Name()}
		st.Rows = [][]dataset.Value{t.Row(item)}
		return st, nil
	}
	p := r.Space.pairs[item]
	lt, rt := r.Space.tables[0], r.Space.tables[1]
	st.Tables = []string{lt.Name(), rt.Name()}
	st.Rows = [][]dataset.Value{lt.Row(p.Left), rt.Row(p.Right)}
	return st, nil
}

// FirstLastOfColor implements the "first/last of color" panel fields:
// among displayed items whose normalized distance for the given
// predicate falls into [loLevel, hiLevel] of the colormap, the lowest
// and highest attribute values. ok is false when no displayed item
// matches or the predicate is not numeric.
func (r *Result) FirstLastOfColor(c *query.Cond, loLevel, hiLevel int) (first, last float64, ok bool) {
	pd, exists := r.preds[c]
	if !exists {
		return 0, 0, false
	}
	node := r.nodeOf[c]
	vec := r.Eval.Vec(node)
	m := r.Engine.opt.Map
	first, last = math.Inf(1), math.Inf(-1)
	for rank := 0; rank < r.Displayed; rank++ {
		item := r.Order[rank]
		norm := vec[item]
		if math.IsNaN(norm) {
			continue
		}
		level := m.LevelOfNorm(norm / relevance.Scale)
		if level < loLevel || level > hiLevel {
			continue
		}
		v := pd.valueAt(item)
		if math.IsNaN(v) {
			continue
		}
		ok = true
		first = math.Min(first, v)
		last = math.Max(last, v)
	}
	if !ok {
		return 0, 0, false
	}
	return first, last, true
}

// ItemsInColorRange returns the displayed items whose color level for
// the given query part lies within [loLevel, hiLevel] — the projection
// used "to focus on sets of data items with a specific color"
// (section 4.3). A nil expression selects on the overall result's
// colors.
func (r *Result) ItemsInColorRange(e query.Expr, loLevel, hiLevel int) ([]int, error) {
	var vec []float64
	if e != nil {
		node, ok := r.nodeOf[e]
		if !ok {
			return nil, fmt.Errorf("core: no data for expression %q", e.Label())
		}
		vec = r.Eval.Vec(node)
	}
	m := r.Engine.opt.Map
	var items []int
	for rank := 0; rank < r.Displayed; rank++ {
		item := r.Order[rank]
		var norm float64
		if e == nil {
			// The overall colors of displayed ranks come straight from
			// the ranked prefix — no need to materialize Combined.
			norm = r.DistanceOfRank(rank)
		} else {
			norm = vec[item]
		}
		if math.IsNaN(norm) {
			continue
		}
		level := m.LevelOfNorm(norm / relevance.Scale)
		if level >= loLevel && level <= hiLevel {
			items = append(items, item)
		}
	}
	return items, nil
}

// TopK returns the item indices of the k most relevant items (the head
// of the ranking) — the programmatic consumption path for similarity
// retrieval (section 4.5). When k exceeds the materialized selection
// prefix, the ranking is extended with another selection pass over the
// combined distances; the already-ranked prefix is unchanged by the
// extension. Concurrent TopK calls are synchronized, but an extension
// replaces the Order/sorted slices — goroutines reading the exported
// Order field directly must not race with deeper TopK calls (rank with
// Options.FullSort when that sharing pattern is needed).
func (r *Result) TopK(k int) []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if k > len(r.Order) {
		k = len(r.Order)
	}
	if k < 0 {
		k = 0
	}
	if k > r.rankedK {
		sorted, order := topk.SelectKWithIndex(r.combinedLocked(), k)
		r.sorted, r.Order, r.rankedK = sorted, order, k
	}
	out := make([]int, k)
	copy(out, r.Order[:k])
	return out
}

// Root returns the root of the evaluated distance tree (for
// diagnostics).
func (r *Result) Root() *relevance.Node { return r.root }

// Pair returns the (left row, right row) of a cross-product item; ok is
// false for single-table queries or out-of-range items.
func (r *Result) Pair(item int) (left, right int, ok bool) {
	if r.Space == nil || r.Space.pairs == nil || item < 0 || item >= len(r.Space.pairs) {
		return 0, 0, false
	}
	p := r.Space.pairs[item]
	return p.Left, p.Right, true
}

// CellOfRank returns the window cell of display rank k (Unplaced when
// out of range).
func (r *Result) CellOfRank(k int) arrange.Point {
	if k < 0 || k >= len(r.cells) {
		return arrange.Unplaced
	}
	return r.cells[k]
}

// NormOf returns the normalized distance of an item for a query part.
func (r *Result) NormOf(e query.Expr, item int) (float64, error) {
	node, ok := r.nodeOf[e]
	if !ok {
		return 0, fmt.Errorf("core: no data for expression %q", e.Label())
	}
	vec := r.Eval.Vec(node)
	if item < 0 || item >= len(vec) {
		return 0, fmt.Errorf("core: item %d out of range", item)
	}
	return vec[item], nil
}

// ColorFor exposes the colormap mapping used by the windows.
func (r *Result) ColorFor(norm float64) colormap.RGB { return r.colorFor(norm) }

// DrillDownWindows implements the figure-5 interaction: double-clicking
// a boolean operator box yields a visualization window for that query
// part — its overall result plus one window per child predicate. With
// independent == false the arrangement of data items "is the same
// arrangement as for the overall result of the whole query"; with
// independent == true the items are re-arranged "according to the
// relevance factors calculated for the query part only".
func (r *Result) DrillDownWindows(e query.Expr, independent bool) ([]*render.Window, error) {
	node, ok := r.nodeOf[e]
	if !ok {
		return nil, fmt.Errorf("core: no data for expression %q", e.Label())
	}
	parts := append([]query.Expr{e}, query.Predicates(e)...)
	if len(query.Predicates(e)) == 1 && query.Predicates(e)[0] == e {
		parts = []query.Expr{e} // leaf drill-down: just the one window
	}
	if !independent {
		out := make([]*render.Window, 0, len(parts))
		for i, p := range parts {
			w, err := r.WindowFor(p)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				w.Title = "overall " + e.Label()
			}
			out = append(out, w)
		}
		return out, nil
	}
	// Independent arrangement: re-rank by the part's own distances. The
	// part only ever displays up to the window capacity, so the default
	// path selects that many ranks instead of sorting all n.
	vec := r.Eval.Vec(node)
	opt := r.Engine.opt
	capacity := opt.GridW * opt.GridH
	var order []int
	if r.Engine.fullSort() {
		_, order = reduce.SortWithIndex(vec)
	} else {
		k := capacity
		if k > len(vec) {
			k = len(vec)
		}
		_, order = topk.SelectKWithIndex(vec, k)
	}
	displayed := r.Displayed
	if displayed > capacity {
		displayed = capacity
	}
	if colorable := len(vec) - relevance.CountNaN(vec); displayed > colorable {
		displayed = colorable
	}
	cells := arrange.Place(opt.GridW, opt.GridH, displayed)
	out := make([]*render.Window, 0, len(parts))
	for i, p := range parts {
		pnode, ok := r.nodeOf[p]
		if !ok {
			return nil, fmt.Errorf("core: no data for expression %q", p.Label())
		}
		pvec := r.Eval.Vec(pnode)
		w := render.NewWindow(p.Label(), opt.GridW, opt.GridH, arrange.BlockSide(opt.PixelsPerItem))
		if i == 0 {
			w.Title = "overall " + e.Label() + " (independent)"
		}
		for rank := 0; rank < displayed; rank++ {
			w.SetCell(cells[rank], r.colorFor(pvec[order[rank]]))
		}
		out = append(out, w)
	}
	return out, nil
}
