package core

import (
	"strings"
	"sync"
	"time"

	"repro/internal/query"
	"repro/internal/relevance"
)

// SharedCache is the catalog-level tier of the predicate cache: one
// instance per catalog, attached to every session exploring that
// catalog, so the expensive part of the feedback loop — leaf distance
// vectors and their quantile indexes — is computed once per catalog
// instead of once per session. It is the first piece of the multi-
// tenant serving architecture: N users dragging sliders over the same
// large database share every leaf whose structural signature matches.
//
// The design invariants, in order of importance:
//
//   - Entries are immutable. A vector is fully computed before it is
//     stored and never written afterwards, so any number of sessions
//     may read a cached vector concurrently without synchronization.
//
//   - Invalidation and eviction are copy-on-invalidate: they only
//     unlink an entry from the map. Sessions still holding the vector
//     (via their private RunCache tier or a live Result) keep reading
//     valid, unchanging data; the next fill allocates a fresh vector
//     instead of reusing the old one.
//
//   - Fills are singleflight: when N sessions miss on the same key at
//     once (the classic thundering herd of a shared dashboard), one
//     computes and the rest wait for its result.
//
//   - Memory is bounded by an entry cap and a byte budget, evicted in
//     least-recently-used order.
//
//   - Admission is cost-aware: only leaves whose measured compute time
//     reaches AdmitMinCost occupy the budget (edit-distance and join
//     leaves qualify; cheap numeric sweeps are recomputed instead of
//     churning the LRU). Rejected fills still serve their result to the
//     caller and to every singleflight waiter — admission decides
//     residency, never correctness.
//
// Correctness does not depend on invalidation: keys embed the full
// structural signature of the leaf computation including table names
// and row counts (see spaceSig), so an entry can never be served
// stale. All sessions sharing a cache must use the same catalog and
// distance registry — the keys fingerprint table identities, not cell
// contents or registered function implementations. Sessions may differ
// in every other option: leaf vectors are upstream of normalization
// and combination, and the leaf kinds that do depend on options
// (subquery leaves, signed-distance vectors) carry those options in
// their keys or satisfy lookups conditionally.
type SharedCache struct {
	mu       sync.Mutex
	entries  map[string]*sharedEntry
	inflight map[string]*sharedCall
	// clock orders accesses for LRU eviction.
	clock      uint64
	bytes      int64
	maxEntries int
	maxBytes   int64
	// admitMin is the minimum measured compute cost for residency;
	// <= 0 admits every computed leaf.
	admitMin time.Duration

	// interior is the shared tier of the interior-normalization cache
	// (relevance.InteriorEntry promoted from sessions' RunCaches). It
	// has its own byte budget and LRU so interior vectors — each as
	// large as a leaf vector plus its sketch — can never thrash the
	// leaf tier's budget, and vice versa.
	interior      map[string]*sharedInterior
	intBytes      int64
	maxIntEntries int
	maxIntBytes   int64

	// backend is the optional remote tier (a network KV shared across
	// the fleet); see SharedBackend in remote.go. All network calls
	// happen outside mu.
	backend SharedBackend

	hits, misses, fills, waits, rejects uint64
	intHits, intMisses                  uint64
	remoteHits, remoteMisses            uint64
	remotePuts                          uint64
}

// sharedInterior is one resident interior entry with its accounting.
type sharedInterior struct {
	e     *relevance.InteriorEntry
	bytes int64
	used  uint64
}

// Default bounds for NewSharedCache: sized for a serving tier (many
// sessions, many queries) rather than the 64-entry private tier of one
// interaction loop.
const (
	DefaultSharedEntries = 1024
	DefaultSharedBytes   = 256 << 20 // 256 MiB of cached vectors

	// DefaultAdmitMinCost is the admission threshold SharedOptions
	// selects when AdmitMinCost is zero: roughly the cost boundary
	// between a cheap numeric sweep (tens of microseconds to a few
	// hundred at interactive row counts) and the leaves worth sharing —
	// edit-distance predicates, join connections, subqueries.
	DefaultAdmitMinCost = time.Millisecond
)

// SharedOptions configures a shared tier. The zero value selects the
// defaults, including cost-aware admission at DefaultAdmitMinCost.
type SharedOptions struct {
	// MaxEntries and MaxBytes bound the resident set; zero or negative
	// values select DefaultSharedEntries / DefaultSharedBytes.
	MaxEntries int
	MaxBytes   int64
	// AdmitMinCost is the minimum measured compute time a leaf must
	// cost before it is admitted into the tier: zero selects
	// DefaultAdmitMinCost, negative admits every computed leaf (the
	// historical all-or-nothing behavior, also what NewSharedCache
	// selects). Whatever the policy decides, the computed vector is
	// still returned to the caller and to all singleflight waiters —
	// admission bounds budget churn, it never costs correctness.
	AdmitMinCost time.Duration
	// Backend plugs a remote tier (network KV) behind the cache: fills
	// admitted locally are offered to it, and misses consult it before
	// computing. Nil serves purely from this process.
	Backend SharedBackend
}

// NewSharedCacheOpts creates a shared tier from SharedOptions — the
// constructor serving tiers use, with cost-aware admission on by
// default.
func NewSharedCacheOpts(o SharedOptions) *SharedCache {
	sc := NewSharedCache(o.MaxEntries, o.MaxBytes)
	switch {
	case o.AdmitMinCost == 0:
		sc.admitMin = DefaultAdmitMinCost
	case o.AdmitMinCost > 0:
		sc.admitMin = o.AdmitMinCost
	}
	sc.backend = o.Backend
	return sc
}

// sharedEntry is one immutable cached leaf. Exactly one of pd and
// dists is set; quant is attached later, when some session first
// reuses the leaf (promotion of the quantile index to the shared
// tier).
type sharedEntry struct {
	pd     *predicateData
	dists  []float64
	quant  *relevance.LeafQuantiles
	cstats *relevance.LeafChunkStats
	attr   string
	label  string
	bytes  int64
	used   uint64
}

// sharedView is a consistent snapshot of an entry's payload, taken
// under the cache mutex (the quant field of the entry itself may be
// attached concurrently by another session).
type sharedView struct {
	pd     *predicateData
	dists  []float64
	quant  *relevance.LeafQuantiles
	cstats *relevance.LeafChunkStats
}

// sharedCall is one in-flight singleflight fill.
type sharedCall struct {
	done chan struct{}
	view sharedView
	ok   bool
	err  error
}

// NewSharedCache creates a shared tier with the given bounds; zero or
// negative values select the defaults. Caches built this way admit
// every computed leaf — the in-process default, where a handful of
// sessions share one interaction working set. Serving tiers exposed to
// adversarial traffic (slider sweeps over hundreds of distinct ranges)
// should use NewSharedCacheOpts, whose cost-aware admission keeps
// cheap leaves from churning the byte budget.
func NewSharedCache(maxEntries int, maxBytes int64) *SharedCache {
	if maxEntries <= 0 {
		maxEntries = DefaultSharedEntries
	}
	if maxBytes <= 0 {
		maxBytes = DefaultSharedBytes
	}
	return &SharedCache{
		entries:    make(map[string]*sharedEntry),
		inflight:   make(map[string]*sharedCall),
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		interior:   make(map[string]*sharedInterior),
		// The interior tier rides along at a quarter of the leaf
		// bounds: interior entries are derived data (always rebuildable
		// from the leaves in one pass), so they never crowd out the
		// vectors they are derived from.
		maxIntEntries: maxEntries/4 + 1,
		maxIntBytes:   maxBytes / 4,
	}
}

// SharedStats is a point-in-time snapshot of the shared tier.
type SharedStats struct {
	// Hits counts lookups served from the cache, including waiters
	// that got their vector from another session's in-flight fill.
	Hits uint64
	// Misses counts lookups that had to compute (singleflight
	// leaders).
	Misses uint64
	// Fills counts successful stores (misses whose computation
	// succeeded, plus needSigned upgrades that replaced an entry).
	Fills uint64
	// Waits counts lookups that blocked on another session's fill
	// instead of computing redundantly.
	Waits uint64
	// Rejects counts computed fills the admission policy kept out of
	// the resident set (compute cost below AdmitMinCost); their results
	// were still served to the caller and any waiters.
	Rejects uint64
	// Entries and Bytes describe the current resident set.
	Entries int
	Bytes   int64
	// InteriorHits/InteriorMisses count lookups against the shared
	// interior-normalization tier; InteriorEntries and InteriorBytes
	// describe its resident set (budgeted separately from the leaves).
	InteriorHits, InteriorMisses uint64
	InteriorEntries              int
	InteriorBytes                int64
	// RemoteHits/RemoteMisses/RemotePuts count traffic against the
	// attached remote backend (leaf entries, promoted indexes, and
	// interior entries combined); all zero when no backend is attached.
	// A RemoteHit is work some other node already paid for.
	RemoteHits, RemoteMisses, RemotePuts uint64
	// RemoteBreaker/RemoteTrips/RemoteShortCircuits report the remote
	// backend's circuit breaker when the backend implements
	// BreakerReporter (empty/zero otherwise): the current state
	// ("closed", "open", "half-open"), cumulative closed→open trips,
	// and requests answered instantly while open instead of paying a
	// network timeout.
	RemoteBreaker                    string
	RemoteTrips, RemoteShortCircuits uint64
}

// Stats returns cumulative counters and the current size.
func (sc *SharedCache) Stats() SharedStats {
	sc.mu.Lock()
	st := SharedStats{
		Hits: sc.hits, Misses: sc.misses, Fills: sc.fills, Waits: sc.waits,
		Rejects: sc.rejects,
		Entries: len(sc.entries), Bytes: sc.bytes,
		InteriorHits: sc.intHits, InteriorMisses: sc.intMisses,
		InteriorEntries: len(sc.interior), InteriorBytes: sc.intBytes,
		RemoteHits: sc.remoteHits, RemoteMisses: sc.remoteMisses,
		RemotePuts: sc.remotePuts,
	}
	backend := sc.backend
	sc.mu.Unlock()
	// The breaker snapshot takes the backend's own lock — outside ours,
	// so a slow reporter can never stall fills.
	if br, ok := backend.(BreakerReporter); ok {
		st.RemoteBreaker, st.RemoteTrips, st.RemoteShortCircuits = br.BreakerState()
	}
	return st
}

// Len returns the number of resident entries.
func (sc *SharedCache) Len() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.entries)
}

// Bytes returns the resident vector bytes.
func (sc *SharedCache) Bytes() int64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.bytes
}

// satisfies reports whether the entry can serve a lookup that needs
// signed distances (only condition entries carry them; needSigned is
// set by 2D-arrangement engines).
func (e *sharedEntry) satisfies(needSigned bool) bool {
	return e.pd == nil || !needSigned || e.pd.Signed != nil
}

// sizeBytes accounts the entry's retained vectors.
func (e *sharedEntry) sizeBytes() int64 {
	n := len(e.dists)
	if e.pd != nil {
		n += len(e.pd.Values) + len(e.pd.Raw) + len(e.pd.Signed)
	}
	if e.quant != nil {
		n += e.quant.Size()
	}
	if e.cstats != nil {
		n += e.cstats.Size()
	}
	return int64(8 * n)
}

// view snapshots the payload; call with the mutex held.
func (e *sharedEntry) viewLocked() sharedView {
	return sharedView{pd: e.pd, dists: e.dists, quant: e.quant, cstats: e.cstats}
}

// fetch returns the entry for key, computing it at most once across
// concurrent callers. hit reports whether the view was served without
// running compute in this call (a resident entry, or another caller's
// fill we waited on). compute runs without any cache lock held, so
// fills for different keys proceed concurrently and a fill may
// recursively fetch other keys.
func (sc *SharedCache) fetch(key string, needSigned bool, compute func() (*sharedEntry, error)) (view sharedView, hit bool, err error) {
	sc.mu.Lock()
	for {
		if e, ok := sc.entries[key]; ok && e.satisfies(needSigned) {
			sc.clock++
			e.used = sc.clock
			sc.hits++
			v := e.viewLocked()
			sc.mu.Unlock()
			return v, true, nil
		}
		call, ok := sc.inflight[key]
		if !ok {
			break // no resident entry, no fill in flight: we lead
		}
		sc.waits++
		sc.mu.Unlock()
		<-call.done
		if call.err != nil {
			// The leader's computation failed; ours would too (same
			// key, same deterministic computation over the same
			// catalog).
			return sharedView{}, false, call.err
		}
		if call.ok && (call.view.pd == nil || !needSigned || call.view.pd.Signed != nil) {
			sc.mu.Lock()
			sc.hits++
			sc.mu.Unlock()
			return call.view, true, nil
		}
		// The finished fill does not satisfy us (e.g. it lacks signed
		// distances and we need them): loop and try to lead an
		// upgrading fill ourselves.
		sc.mu.Lock()
	}
	sc.misses++
	call := &sharedCall{done: make(chan struct{})}
	sc.inflight[key] = call
	backend := sc.backend
	sc.mu.Unlock()

	// Leader path: consult the remote tier before computing — a node
	// elsewhere in the fleet may already have paid for this leaf. Only
	// the singleflight leader asks, so a thundering herd costs one
	// network round trip, and a decode failure (version skew, truncated
	// value) degrades to a local compute.
	var e *sharedEntry
	remote := false
	if backend != nil {
		if data, ok := backend.Get(key); ok {
			if d, derr := decodeSharedEntry(data); derr == nil && d.satisfies(needSigned) {
				e, remote = d, true
			}
		}
	}
	var cost time.Duration
	if e == nil {
		t0 := time.Now()
		e, err = compute()
		cost = time.Since(t0)
	}

	sc.mu.Lock()
	if backend != nil {
		if remote {
			sc.remoteHits++
		} else {
			sc.remoteMisses++
		}
	}
	delete(sc.inflight, key)
	stored := false
	if err == nil {
		// Cost-aware admission: a leaf cheaper than the threshold is
		// served but not stored — recomputing it is cheaper than the
		// budget churn of keeping it resident. A fill that replaces an
		// existing entry (the needSigned upgrade) is always admitted:
		// the superseded entry's budget is reclaimed either way, and
		// dropping it would downgrade later 2D lookups to permanent
		// misses. Remote-served entries are always admitted: the fleet
		// already judged them worth sharing.
		_, replaces := sc.entries[key]
		if !remote && sc.admitMin > 0 && cost < sc.admitMin && !replaces {
			sc.rejects++
		} else {
			sc.clock++
			e.used = sc.clock
			e.bytes = e.sizeBytes()
			if old, ok := sc.entries[key]; ok {
				sc.bytes -= old.bytes
			}
			sc.entries[key] = e
			sc.bytes += e.bytes
			sc.fills++
			sc.evictLocked()
			stored = true
		}
		call.view, call.ok = e.viewLocked(), true
		view = call.view
	}
	call.err = err
	sc.mu.Unlock()
	close(call.done)
	// Offer locally computed, admitted fills to the fleet. The encode
	// reads only immutable fields and the Put happens after waiters are
	// released, so a slow backend never extends the singleflight.
	if stored && !remote && backend != nil {
		if data, ok := encodeSharedEntry(e); ok {
			backend.Put(key, data)
			sc.noteRemote(&sc.remotePuts)
		}
	}
	return view, remote, err
}

// indexesOf returns the promoted leaf indexes (quantiles + chunk
// stats) for key, if any session has built them.
func (sc *SharedCache) indexesOf(key string) (*relevance.LeafQuantiles, *relevance.LeafChunkStats) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if e, ok := sc.entries[key]; ok {
		return e.quant, e.cstats
	}
	return nil, nil
}

// attachIndexes promotes freshly built leaf indexes (the quantile
// index and the block-pruning chunk stats) to the shared tier and
// returns the canonical ones: if another session's build won the race,
// its indexes are returned (both are identical — the builds are
// deterministic — so either could win; keeping the first keeps one
// copy resident). The entry's byte accounting grows by the indexes.
func (sc *SharedCache) attachIndexes(key string, q *relevance.LeafQuantiles, cs *relevance.LeafChunkStats) (*relevance.LeafQuantiles, *relevance.LeafChunkStats) {
	sc.mu.Lock()
	e, ok := sc.entries[key]
	if !ok {
		sc.mu.Unlock()
		return q, cs
	}
	if e.quant != nil {
		q, cs := e.quant, e.cstats
		sc.mu.Unlock()
		return q, cs
	}
	e.quant, e.cstats = q, cs
	grown := e.sizeBytes()
	sc.bytes += grown - e.bytes
	e.bytes = grown
	sc.evictLocked()
	backend := sc.backend
	sc.mu.Unlock()
	// The winning build is promoted to the fleet too: quantile indexes
	// are pure functions of the (already shared) leaf vector, so any
	// node can reuse them for O(1) normalization ranges.
	if backend != nil {
		backend.Put(remoteIndexPrefix+key, encodeLeafIndexes(q, cs))
		sc.noteRemote(&sc.remotePuts)
	}
	return q, cs
}

// InteriorOf returns the resident interior-normalization entry for
// key, or nil. Entries are immutable; any number of sessions may read
// one concurrently.
func (sc *SharedCache) InteriorOf(key string) *relevance.InteriorEntry {
	sc.mu.Lock()
	if r, ok := sc.interior[key]; ok {
		sc.clock++
		r.used = sc.clock
		sc.intHits++
		e := r.e
		sc.mu.Unlock()
		return e
	}
	sc.intMisses++
	backend := sc.backend
	sc.mu.Unlock()
	if backend == nil {
		return nil
	}
	// Interior keys embed the leaves' full cache keys plus every kernel
	// option, so a fleet-mate's entry is exactly the one this node would
	// build; the histogram sketch is re-derived locally by the decoder.
	data, ok := backend.Get(key)
	if !ok {
		sc.noteRemote(&sc.remoteMisses)
		return nil
	}
	e, err := relevance.DecodeInteriorEntry(data)
	if err != nil {
		sc.noteRemote(&sc.remoteMisses)
		return nil
	}
	sc.noteRemote(&sc.remoteHits)
	return sc.attachInteriorLocal(key, e)
}

// AttachInterior promotes a freshly built interior entry to the shared
// tier and returns the canonical one: if another session's build won
// the race, its entry is returned (both are bit-identical — the fused
// pass is deterministic — so either could win; keeping the first keeps
// one copy resident and its Range memo shared).
func (sc *SharedCache) AttachInterior(key string, e *relevance.InteriorEntry) *relevance.InteriorEntry {
	canon := sc.attachInteriorLocal(key, e)
	if canon != e {
		return canon
	}
	// This build won the local race; offer it to the fleet too (a
	// remote-decoded entry goes through attachInteriorLocal directly and
	// is never re-offered).
	if backend := sc.backendRef(); backend != nil {
		backend.Put(key, relevance.AppendInteriorEntry(nil, canon))
		sc.noteRemote(&sc.remotePuts)
	}
	return canon
}

// attachInteriorLocal is AttachInterior without the remote offer: the
// local store under the interior tier's cap and budget, first promotion
// canonical.
func (sc *SharedCache) attachInteriorLocal(key string, e *relevance.InteriorEntry) *relevance.InteriorEntry {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if r, ok := sc.interior[key]; ok {
		sc.clock++
		r.used = sc.clock
		return r.e
	}
	sc.clock++
	r := &sharedInterior{e: e, bytes: int64(e.Size()), used: sc.clock}
	sc.interior[key] = r
	sc.intBytes += r.bytes
	sc.evictInteriorLocked()
	return e
}

// evictInteriorLocked is evictLocked for the interior tier's separate
// cap and byte budget.
func (sc *SharedCache) evictInteriorLocked() {
	for len(sc.interior) > sc.maxIntEntries || sc.intBytes > sc.maxIntBytes {
		if len(sc.interior) == 0 {
			return
		}
		var oldestKey string
		var oldest uint64
		first := true
		for k, r := range sc.interior {
			if first || r.used < oldest || (r.used == oldest && k < oldestKey) {
				oldestKey, oldest, first = k, r.used, false
			}
		}
		sc.intBytes -= sc.interior[oldestKey].bytes
		delete(sc.interior, oldestKey)
	}
}

// evictLocked drops least-recently-used entries until both the entry
// cap and the byte budget hold; called with the mutex held after every
// store. Ties break by key so eviction order is deterministic.
// Evicting an entry other sessions still read is safe: entries are
// immutable and eviction only unlinks them (copy-on-invalidate).
func (sc *SharedCache) evictLocked() {
	for len(sc.entries) > sc.maxEntries || sc.bytes > sc.maxBytes {
		if len(sc.entries) == 0 {
			return
		}
		var oldestKey string
		var oldest uint64
		first := true
		for k, e := range sc.entries {
			if first || e.used < oldest || (e.used == oldest && k < oldestKey) {
				oldestKey, oldest, first = k, e.used, false
			}
		}
		sc.bytes -= sc.entries[oldestKey].bytes
		delete(sc.entries, oldestKey)
	}
}

// InvalidateCond drops the shared entries derived from exactly this
// condition in its current form — the propagation of a session's
// range edit (see RunCache.InvalidateCond). This is memory
// management, not correctness: the superseded range's vectors would
// never be served for the new range (the key embeds the literals), and
// sessions still sitting at the old range keep their private-tier
// copies. Old readers are unaffected — the vectors themselves are
// immutable and only the map entry is unlinked.
func (sc *SharedCache) InvalidateCond(cond *query.Cond) {
	if cond == nil {
		return
	}
	label := cond.Label()
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for k, e := range sc.entries {
		if e.attr != "" && e.attr == cond.Attr && e.label == label {
			sc.bytes -= e.bytes
			delete(sc.entries, k)
		}
	}
	// Interior keys embed their leaves' full cache keys, so an entry
	// combining the superseded leaf contains its label verbatim. The
	// containment check can over-drop (a literal string collision), but
	// invalidation is memory management — over-dropping costs a rebuild,
	// never correctness.
	for k, r := range sc.interior {
		if strings.Contains(k, label) {
			sc.intBytes -= r.bytes
			delete(sc.interior, k)
		}
	}
}

// Clear drops every entry. In-flight fills complete and store their
// results afterwards (their vectors are valid regardless).
func (sc *SharedCache) Clear() {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.entries = make(map[string]*sharedEntry)
	sc.bytes = 0
	sc.interior = make(map[string]*sharedInterior)
	sc.intBytes = 0
}
