package core

import (
	"sync"
	"sync/atomic"
)

// parallelFor runs fn over the index range [0, n) split into contiguous
// chunks, executed by up to workers goroutines (the calling goroutine
// included, so the pool never deadlocks under nesting). Chunks are
// disjoint, so fn may write to per-index slots of shared slices without
// synchronization, and the union of all chunk iterations is exactly the
// serial loop — results are bit-identical to workers == 1. Errors are
// collected per chunk and the first one in chunk order is returned, so
// error reporting is deterministic too. Ranges shorter than minChunk
// run serially.
func parallelFor(n, workers, minChunk int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if minChunk < 1 {
		minChunk = 1
	}
	if max := n / minChunk; workers > max {
		workers = max
	}
	if workers <= 1 {
		return fn(0, n)
	}
	// More chunks than workers so a slow chunk doesn't straggle the run;
	// a shared atomic cursor hands chunks to whichever worker is free.
	nchunks := workers * 4
	size := (n + nchunks - 1) / nchunks
	if size < minChunk {
		size = minChunk
	}
	nchunks = (n + size - 1) / size
	errs := make([]error, nchunks)
	var next atomic.Int64
	work := func() {
		for {
			c := int(next.Add(1)) - 1
			if c >= nchunks {
				return
			}
			lo := c * size
			hi := lo + size
			if hi > n {
				hi = n
			}
			errs[c] = fn(lo, hi)
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// itemChunk is the minimum per-item work batch; below this the
// goroutine handoff costs more than the loop body.
const itemChunk = 2048
