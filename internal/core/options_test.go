package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/relevance"
	"repro/internal/render"
)

func TestSliderKinds(t *testing.T) {
	cat := dataset.NewCatalog()
	tbl, err := dataset.NewTable("K", dataset.Schema{
		{Name: "f", Kind: dataset.KindFloat},
		{Name: "i", Kind: dataset.KindInt},
		{Name: "lvl", Kind: dataset.KindOrdinal, Categories: []string{"low", "mid", "high"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 20; n++ {
		lvl := []string{"low", "mid", "high"}[n%3]
		if err := tbl.AppendRow(dataset.Float(float64(n)), dataset.Int(int64(n%8)), dataset.Ordinal(lvl)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	e := New(cat, nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT f FROM K WHERE f BETWEEN 5 AND 10 AND i > 3 AND lvl >= 'mid'`)
	if err != nil {
		t.Fatal(err)
	}
	specs := res.SliderSpecs()
	if len(specs) != 3 {
		t.Fatalf("specs: %d", len(specs))
	}
	// Float BETWEEN: continuous with a median±deviation reading.
	if specs[0].Kind != render.SliderContinuous {
		t.Errorf("float slider kind: %v", specs[0].Kind)
	}
	if math.Abs(specs[0].Median-(specs[0].MarkLo+specs[0].MarkHi)/2) > 1e-9 {
		t.Errorf("median: %v for marks [%v, %v]", specs[0].Median, specs[0].MarkLo, specs[0].MarkHi)
	}
	if specs[0].Deviation <= 0 {
		t.Errorf("deviation: %v", specs[0].Deviation)
	}
	// Int: discrete with ticks.
	if specs[1].Kind != render.SliderDiscrete || specs[1].Ticks < 2 {
		t.Errorf("int slider: kind %v ticks %d", specs[1].Kind, specs[1].Ticks)
	}
	// Ordinal: enumeration with mid+high selected.
	if specs[2].Kind != render.SliderEnumeration {
		t.Fatalf("ordinal slider kind: %v", specs[2].Kind)
	}
	if len(specs[2].Labels) != 3 {
		t.Fatalf("labels: %v", specs[2].Labels)
	}
	wantSel := []bool{false, true, true}
	for i, w := range wantSel {
		if specs[2].Selected[i] != w {
			t.Fatalf("selection: %v, want %v", specs[2].Selected, wantSel)
		}
	}
}

func TestTimeSliderCaption(t *testing.T) {
	e := New(envCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT Temperature FROM Weather WHERE DateTime > '1994-06-01T05:00:00Z'`)
	if err != nil {
		t.Fatal(err)
	}
	specs := res.SliderSpecs()
	if len(specs) != 1 {
		t.Fatalf("specs: %d", len(specs))
	}
	if want := "1994-06-01 00:00"; len(specs[0].Caption) == 0 || specs[0].Caption[:16] != want {
		t.Fatalf("time caption: %q", specs[0].Caption)
	}
}

func TestCategorySelectionOps(t *testing.T) {
	cat := dataset.NewCatalog()
	tbl, _ := dataset.NewTable("C", dataset.Schema{
		{Name: "c", Kind: dataset.KindNominal, Categories: []string{"red", "green", "blue"}},
	})
	for _, v := range []string{"red", "green", "blue", "red"} {
		_ = tbl.AppendRow(dataset.Nominal(v))
	}
	_ = cat.AddTable(tbl)
	e := New(cat, nil, Options{GridW: 4, GridH: 4})
	cases := []struct {
		sql  string
		want []bool
	}{
		{`SELECT c FROM C WHERE c = 'green'`, []bool{false, true, false}},
		{`SELECT c FROM C WHERE c <> 'green'`, []bool{true, false, true}},
		{`SELECT c FROM C WHERE c IN ('red', 'blue')`, []bool{true, false, true}},
	}
	for _, tc := range cases {
		res, err := e.RunSQL(tc.sql)
		if err != nil {
			t.Fatalf("%s: %v", tc.sql, err)
		}
		infos := res.PredicateInfos()
		if len(infos) != 1 {
			t.Fatalf("%s: infos %d", tc.sql, len(infos))
		}
		for i, w := range tc.want {
			if infos[0].SelectedCats[i] != w {
				t.Errorf("%s: selection %v, want %v", tc.sql, infos[0].SelectedCats, tc.want)
				break
			}
		}
	}
}

func TestANDCombinerOptions(t *testing.T) {
	cat := smallCatalog(t)
	run := func(opt Options) []float64 {
		e := New(cat, nil, opt)
		res, err := e.RunSQL(`SELECT x FROM T WHERE x > 6 AND y > 6`)
		if err != nil {
			t.Fatal(err)
		}
		return res.Combined()
	}
	arith := run(Options{GridW: 8, GridH: 8})
	euclid := run(Options{GridW: 8, GridH: 8, And: relevance.ANDEuclidean})
	lp := run(Options{GridW: 8, GridH: 8, And: relevance.ANDLp, LpP: 3})
	// All keep the no-answer situation (x>6 AND y>6 is impossible here:
	// y = 9-x) but the combined profiles differ.
	differENorm := false
	for i := range arith {
		if arith[i] == 0 {
			t.Fatal("impossible conjunction should have no exact answers")
		}
		if math.Abs(arith[i]-euclid[i]) > 1e-9 {
			differENorm = true
		}
	}
	if !differENorm {
		t.Error("euclidean combiner should differ from arithmetic")
	}
	// Lp with invalid exponent errors.
	e := New(cat, nil, Options{GridW: 8, GridH: 8, And: relevance.ANDLp, LpP: 0.5})
	if _, err := e.RunSQL(`SELECT x FROM T WHERE x > 6 AND y > 6`); err == nil {
		t.Error("Lp with p < 1 should error")
	}
	_ = lp
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.GridW != 128 || o.GridH != 128 || o.PixelsPerItem != 1 {
		t.Fatalf("defaults: %+v", o)
	}
	if o.Map == nil || o.MaxPairs != 1<<20 {
		t.Fatalf("defaults: %+v", o)
	}
	o = Options{PixelsPerItem: 9, PercentDisplayed: 2}.withDefaults()
	if o.PixelsPerItem != 1 || o.PercentDisplayed != 1 {
		t.Fatalf("clamping: %+v", o)
	}
	o = Options{PixelsPerItem: 16, PercentDisplayed: -1}.withDefaults()
	if o.PixelsPerItem != 16 || o.PercentDisplayed != 0 {
		t.Fatalf("clamping: %+v", o)
	}
}

func TestPixelsPerItemBlocks(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 6, GridH: 6, PixelsPerItem: 4})
	res, err := e.RunSQL(`SELECT x FROM T WHERE x > 6`)
	if err != nil {
		t.Fatal(err)
	}
	w := res.OverallWindow()
	pw, ph := w.PixelSize()
	if pw != 12 || ph != 12 {
		t.Fatalf("pixel size: %dx%d (block %d)", pw, ph, w.Block)
	}
}

func TestMaxPairsCap(t *testing.T) {
	e := New(envCatalog(t), nil, Options{GridW: 8, GridH: 8, MaxPairs: 100})
	res, err := e.RunSQL(`SELECT Temperature FROM Weather, Air-Pollution WHERE CONNECT with-time-diff(30)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.N > 100 {
		t.Fatalf("cross product not capped: %d", res.N)
	}
}
