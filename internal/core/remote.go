package core

import (
	"fmt"

	"repro/internal/binenc"
	"repro/internal/dataset"
	"repro/internal/relevance"
)

// SharedBackend is the pluggable remote tier behind a SharedCache: a
// network KV of immutable byte vectors under the same structural keys
// the local tiers use. Because every key embeds the full signature of
// the computation it names — table names, row counts, literals,
// options, and the catalog's content epoch — a value stored by one
// process is correct in every process serving the same data: there is
// no invalidation protocol, only immutable entries that age out of the
// remote store's budget.
//
// Both methods are best-effort and must never block correctness: Get
// answers ok=false on a network failure or a missing key (the caller
// computes locally), and Put is fire-and-forget from the cache's point
// of view. Implementations are responsible for their own timeouts; the
// cache calls them outside its mutex but on the fill path, so a slow
// backend degrades latency, not consistency.
type SharedBackend interface {
	Get(key string) ([]byte, bool)
	Put(key string, val []byte)
}

// BreakerReporter is optionally implemented by a SharedBackend that
// guards its network calls with a circuit breaker (kv.Client does).
// State is "closed", "open", or "half-open"; trips counts closed→open
// transitions; shortCircuits counts calls answered instantly while
// open. SharedCache.Stats surfaces these so /v1/shards and /v1/fleet
// show a KV outage as an open breaker instead of a latency mystery.
type BreakerReporter interface {
	BreakerState() (state string, trips, shortCircuits uint64)
}

// AttachBackend plugs a remote tier behind the cache. Attach before
// serving traffic; entries computed earlier are simply never offered to
// the backend.
func (sc *SharedCache) AttachBackend(b SharedBackend) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.backend = b
}

// backendRef snapshots the attached backend.
func (sc *SharedCache) backendRef() SharedBackend {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.backend
}

// noteRemote bumps one remote-tier counter.
func (sc *SharedCache) noteRemote(c *uint64) {
	sc.mu.Lock()
	*c++
	sc.mu.Unlock()
}

// The shared-entry envelope: version, kind, the invalidation handles,
// then the payload. Only fully materialized entries are encodable —
// a predicateData carrying segment-pushdown state (skip != nil) holds
// lazily materialized Values backed by a local file reader, which has
// no meaning in another process; those leaves stay node-local and the
// remote tier simply never learns them.
const (
	sharedEntryVersion = 1

	sharedKindCond  = 1 // predicateData payload
	sharedKindDists = 2 // bare distance vector (join/boolean/subquery)

	// remoteIndexPrefix namespaces promoted leaf indexes (quantiles +
	// chunk stats) in the remote store; leaf keys start with "C|", "J|",
	// "B|", "S|" and interior keys with "I|", so the prefix collides
	// with nothing.
	remoteIndexPrefix = "Q|"
)

// encodeSharedEntry serializes e for the remote tier, reporting ok =
// false for entries that must not leave the process. The quantile and
// chunk-stat indexes are not part of the envelope — they are promoted
// separately under remoteIndexPrefix when some session builds them.
func encodeSharedEntry(e *sharedEntry) ([]byte, bool) {
	if e.pd != nil && e.pd.skip != nil {
		return nil, false
	}
	b := make([]byte, 0, 64)
	b = append(b, sharedEntryVersion)
	if e.pd != nil {
		pd := e.pd
		b = append(b, sharedKindCond)
		b = binenc.Str(b, e.attr)
		b = binenc.Str(b, e.label)
		b = binenc.Str(b, pd.Attr.Table)
		b = binenc.Str(b, pd.Attr.Attr)
		b = binenc.U32(b, uint32(pd.Attr.Kind))
		var flags byte
		if pd.HasRange {
			flags |= 1
		}
		if pd.CStats != nil {
			flags |= 2
		}
		b = append(b, flags)
		b = binenc.F64(b, pd.MinDB)
		b = binenc.F64(b, pd.MaxDB)
		b = binenc.F64(b, pd.Lo)
		b = binenc.F64(b, pd.Hi)
		b = binenc.F64s(b, pd.Values)
		b = binenc.F64s(b, pd.Raw)
		b = binenc.F64s(b, pd.Signed)
		if pd.CStats != nil {
			// The synthesized chunk index rides along so a remote-warmed
			// cold run still gets its block-pruning bounds.
			b = relevance.AppendLeafChunkStats(b, pd.CStats)
		}
		return b, true
	}
	b = append(b, sharedKindDists)
	b = binenc.Str(b, e.attr)
	b = binenc.Str(b, e.label)
	b = binenc.F64s(b, e.dists)
	return b, true
}

// decodeSharedEntry reverses encodeSharedEntry. The returned entry has
// no accounting fields set; the cache stamps bytes/used when admitting
// it.
func decodeSharedEntry(data []byte) (*sharedEntry, error) {
	r := binenc.NewReader(data)
	if ver := r.Byte(); ver != sharedEntryVersion {
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, fmt.Errorf("core: shared-entry codec version %d", ver)
	}
	kind := r.Byte()
	e := &sharedEntry{}
	e.attr = r.Str()
	e.label = r.Str()
	switch kind {
	case sharedKindCond:
		pd := &predicateData{}
		pd.Attr.Table = r.Str()
		pd.Attr.Attr = r.Str()
		pd.Attr.Kind = dataset.Kind(r.U32())
		flags := r.Byte()
		pd.HasRange = flags&1 != 0
		pd.MinDB = r.F64()
		pd.MaxDB = r.F64()
		pd.Lo = r.F64()
		pd.Hi = r.F64()
		pd.Values = r.F64s()
		pd.Raw = r.F64s()
		pd.Signed = r.F64s()
		if flags&2 != 0 {
			cs, err := relevance.DecodeLeafChunkStats(r)
			if err != nil {
				return nil, err
			}
			pd.CStats = cs
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		if !r.Done() {
			return nil, binenc.ErrTruncated
		}
		if len(pd.Values) != len(pd.Raw) || (pd.Signed != nil && len(pd.Signed) != len(pd.Raw)) {
			return nil, fmt.Errorf("core: shared entry vector lengths disagree")
		}
		e.pd = pd
	case sharedKindDists:
		e.dists = r.F64s()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if !r.Done() {
			return nil, binenc.ErrTruncated
		}
	default:
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, fmt.Errorf("core: shared-entry kind %d", kind)
	}
	return e, nil
}

// encodeLeafIndexes serializes a promoted quantile index and its chunk
// stats for the remote tier.
func encodeLeafIndexes(q *relevance.LeafQuantiles, cs *relevance.LeafChunkStats) []byte {
	b := make([]byte, 0, 64)
	b = append(b, sharedEntryVersion)
	b = relevance.AppendLeafQuantiles(b, q)
	var flags byte
	if cs != nil {
		flags = 1
	}
	b = append(b, flags)
	if cs != nil {
		b = relevance.AppendLeafChunkStats(b, cs)
	}
	return b
}

// decodeLeafIndexes reverses encodeLeafIndexes.
func decodeLeafIndexes(data []byte) (*relevance.LeafQuantiles, *relevance.LeafChunkStats, error) {
	r := binenc.NewReader(data)
	if ver := r.Byte(); ver != sharedEntryVersion {
		if r.Err() != nil {
			return nil, nil, r.Err()
		}
		return nil, nil, fmt.Errorf("core: leaf-index codec version %d", ver)
	}
	q, err := relevance.DecodeLeafQuantiles(r)
	if err != nil {
		return nil, nil, err
	}
	var cs *relevance.LeafChunkStats
	if r.Byte()&1 != 0 {
		if cs, err = relevance.DecodeLeafChunkStats(r); err != nil {
			return nil, nil, err
		}
	}
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if !r.Done() {
		return nil, nil, binenc.ErrTruncated
	}
	return q, cs, nil
}

// remoteIndexesOf consults the remote tier for leaf indexes another
// node has already built, attaching a hit to the resident entry (no
// re-Put — the value came from the store) so later sessions on this
// node hit locally.
func (sc *SharedCache) remoteIndexesOf(key string) (*relevance.LeafQuantiles, *relevance.LeafChunkStats) {
	b := sc.backendRef()
	if b == nil {
		return nil, nil
	}
	data, ok := b.Get(remoteIndexPrefix + key)
	if !ok {
		sc.noteRemote(&sc.remoteMisses)
		return nil, nil
	}
	q, cs, err := decodeLeafIndexes(data)
	if err != nil {
		sc.noteRemote(&sc.remoteMisses)
		return nil, nil
	}
	sc.mu.Lock()
	sc.remoteHits++
	if e, ok := sc.entries[key]; ok {
		if e.quant != nil {
			q, cs = e.quant, e.cstats
		} else {
			e.quant, e.cstats = q, cs
			grown := e.sizeBytes()
			sc.bytes += grown - e.bytes
			e.bytes = grown
			sc.evictLocked()
		}
	}
	sc.mu.Unlock()
	return q, cs
}
