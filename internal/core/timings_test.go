package core

import (
	"testing"
	"time"
)

func TestConcurrentRuns(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 20; i++ {
				res, err := e.RunSQL(`SELECT x FROM T WHERE x > 6 AND y < 5`)
				if err != nil {
					done <- err
					return
				}
				if res.Stats().NumObjects != 10 {
					done <- errStat
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errStat = errUnexpected{}

type errUnexpected struct{}

func (errUnexpected) Error() string { return "unexpected stats" }

func TestStageTimingsPopulated(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT x FROM T WHERE x > 4 AND y < 8`)
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Timings
	if tm.Total <= 0 {
		t.Fatal("total timing missing")
	}
	sum := tm.Bind + tm.Distances + tm.Evaluate + tm.Sort + tm.Select + tm.Reduce
	if sum > tm.Total+time.Millisecond {
		t.Fatalf("stage sum %v exceeds total %v", sum, tm.Total)
	}
	// The stages cover the bulk of the run (the residue is slice
	// bookkeeping between marks).
	if sum < tm.Total/2 {
		t.Fatalf("stage sum %v suspiciously small vs total %v", sum, tm.Total)
	}
	for _, d := range []time.Duration{tm.Bind, tm.Distances, tm.Evaluate, tm.Sort, tm.Select, tm.Reduce} {
		if d < 0 {
			t.Fatal("negative stage duration")
		}
	}
	// The default path ranks by selection, not by the full sort.
	if tm.Select <= 0 {
		t.Fatal("selection stage not timed on the default path")
	}
	if tm.Sort != 0 {
		t.Fatal("full sort ran on the default selection path")
	}
}

func TestStageTimingsFullSort(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8, FullSort: true})
	res, err := e.RunSQL(`SELECT x FROM T WHERE x > 4 AND y < 8`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timings.Sort <= 0 {
		t.Fatal("sort stage not timed under FullSort")
	}
	if res.Timings.Select != 0 {
		t.Fatal("selection stage ran under FullSort")
	}
}
