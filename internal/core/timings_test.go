package core

import (
	"testing"
	"time"
)

func TestConcurrentRuns(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 20; i++ {
				res, err := e.RunSQL(`SELECT x FROM T WHERE x > 6 AND y < 5`)
				if err != nil {
					done <- err
					return
				}
				if res.Stats().NumObjects != 10 {
					done <- errStat
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errStat = errUnexpected{}

type errUnexpected struct{}

func (errUnexpected) Error() string { return "unexpected stats" }

func TestStageTimingsPopulated(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT x FROM T WHERE x > 4 AND y < 8`)
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Timings
	if tm.Total <= 0 {
		t.Fatal("total timing missing")
	}
	sum := tm.Bind + tm.Distances + tm.Evaluate + tm.Sort + tm.Reduce
	if sum > tm.Total+time.Millisecond {
		t.Fatalf("stage sum %v exceeds total %v", sum, tm.Total)
	}
	// The stages cover the bulk of the run (the residue is slice
	// bookkeeping between marks).
	if sum < tm.Total/2 {
		t.Fatalf("stage sum %v suspiciously small vs total %v", sum, tm.Total)
	}
	for _, d := range []time.Duration{tm.Bind, tm.Distances, tm.Evaluate, tm.Sort, tm.Reduce} {
		if d < 0 {
			t.Fatal("negative stage duration")
		}
	}
}
