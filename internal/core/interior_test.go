package core

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/query"
)

// interiorCatalog builds a single-table numeric catalog large enough to
// span several evaluator chunks, with value distributions that give the
// benchmark query real approximate-answer structure.
func interiorCatalog(t *testing.T, rows int) *dataset.Catalog {
	t.Helper()
	cat := dataset.NewCatalog()
	tbl, err := dataset.NewTable("S", dataset.Schema{
		{Name: "a", Kind: dataset.KindFloat},
		{Name: "b", Kind: dataset.KindFloat},
		{Name: "c", Kind: dataset.KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		err := tbl.AppendRow(
			dataset.Float(float64(i%101)),
			dataset.Float(float64((i*7)%89)),
			dataset.Float(float64((i*13)%97)),
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	return cat
}

const interiorSQL = `SELECT a FROM S WHERE a > 50 AND b < 40 OR c BETWEEN 20 AND 30 WEIGHT 2`

// TestInteriorSketchWarmRerunBitIdentical: warm cached reruns must take
// the interior-normalization fast path (SketchHits > 0) — including
// after a weight drag on a predicate OUTSIDE the cached subtree — and
// stay bit-identical to both an uncached run and a FullSort run.
func TestInteriorSketchWarmRerunBitIdentical(t *testing.T) {
	cat := interiorCatalog(t, 2*4096+57)
	e := New(cat, nil, Options{GridW: 16, GridH: 16})
	full := New(cat, nil, Options{GridW: 16, GridH: 16, FullSort: true})
	cache := NewRunCache()
	q, err := query.Parse(interiorSQL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunCached(q, cache); err != nil {
		t.Fatal(err)
	}
	if cache.InteriorLen() == 0 {
		t.Fatal("cold run cached no interior entries")
	}

	// Warm rerun, unchanged query: the AND subtree must hit.
	warm, err := e.RunCached(q, cache)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Timings.SketchHits == 0 {
		t.Fatal("unchanged warm rerun took no interior hits")
	}
	nchunks := (warm.N + 4095) / 4096
	if warm.Timings.SketchRescans > warm.Timings.SketchHits*nchunks {
		t.Fatalf("rescans %d exceed hits %d x chunks %d", warm.Timings.SketchRescans, warm.Timings.SketchHits, nchunks)
	}

	// Drag the weight of the predicate OUTSIDE the AND subtree (the
	// section 5.2 slider interaction): the AND's raw combined vector is
	// untouched, so its entry must still hit. Predicates of the OR root
	// are [AND(a,b), c]; the BETWEEN leaf is index 1.
	query.Predicates(q.Where)[1].SetWeight(3)
	warm2, err := e.RunCached(q, cache)
	if err != nil {
		t.Fatal(err)
	}
	if warm2.Timings.SketchHits == 0 {
		t.Fatal("weight drag outside the subtree lost the interior hit")
	}

	qRef, _ := query.Parse(interiorSQL)
	query.Predicates(qRef.Where)[1].SetWeight(3)
	ref, err := e.Run(qRef)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, ref, warm2)
	fref, err := full.Run(qRef)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, fref, warm2)
}

// TestInteriorSharedTierPromotion: a second session attached to the
// same SharedCache must get interior hits on its very first run — the
// entries another session built are promoted through the shared tier —
// with bit-identical results.
func TestInteriorSharedTierPromotion(t *testing.T) {
	cat := interiorCatalog(t, 4096+300)
	e := New(cat, nil, Options{GridW: 16, GridH: 16})
	sc := NewSharedCache(0, 0)

	a := NewRunCache()
	a.AttachShared(sc)
	qa, _ := query.Parse(interiorSQL)
	if _, err := e.RunCached(qa, a); err != nil {
		t.Fatal(err)
	}
	if st := sc.Stats(); st.InteriorEntries == 0 || st.InteriorBytes <= 0 {
		t.Fatalf("cold run promoted nothing to the shared interior tier: %+v", st)
	}

	b := NewRunCache()
	b.AttachShared(sc)
	qb, _ := query.Parse(interiorSQL)
	resB, err := e.RunCached(qb, b)
	if err != nil {
		t.Fatal(err)
	}
	if resB.Timings.SketchHits == 0 {
		t.Fatal("second session's first run missed the shared interior tier")
	}
	if resB.Timings.SharedHits == 0 {
		t.Fatal("second session's first run missed the shared leaf tier")
	}
	if st := sc.Stats(); st.InteriorHits == 0 {
		t.Fatalf("shared tier recorded no interior hits: %+v", st)
	}
	ref, err := e.Run(qb)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, ref, resB)
}

// TestInteriorNegationDoesNotAlias: a De-Morganed negation keeps the
// ORIGINAL condition labels on its inverted leaves, so a label-based
// interior signature would collide with the un-negated subtree while
// the vectors differ. The leaf-identity hook (full leaf cache keys in
// the signature) must keep them apart — the negated query served from
// a cache warmed by the positive one must match its own uncached run.
func TestInteriorNegationDoesNotAlias(t *testing.T) {
	cat := interiorCatalog(t, 4096+300)
	e := New(cat, nil, Options{GridW: 16, GridH: 16})
	cache := NewRunCache()

	qPos, _ := query.Parse(`SELECT a FROM S WHERE (a > 50 AND b < 40) OR c > 90`)
	if _, err := e.RunCached(qPos, cache); err != nil {
		t.Fatal(err)
	}
	// NOT(a > 50 OR b < 40) De-Morgans to AND over leaves still labeled
	// "a > 50" / "b < 40" — structurally the twin of qPos's AND subtree.
	qNeg, _ := query.Parse(`SELECT a FROM S WHERE NOT (a > 50 OR b < 40) OR c > 90`)
	got, err := e.RunCached(qNeg, cache)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := e.Run(qNeg)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, ref, got)
}

// TestNoInteriorSketchDisables: the ablation gate must keep cached runs
// off the interior fast path without changing any result.
func TestNoInteriorSketchDisables(t *testing.T) {
	cat := interiorCatalog(t, 4096+300)
	e := New(cat, nil, Options{GridW: 16, GridH: 16, NoInteriorSketch: true})
	cache := NewRunCache()
	q, _ := query.Parse(interiorSQL)
	if _, err := e.RunCached(q, cache); err != nil {
		t.Fatal(err)
	}
	warm, err := e.RunCached(q, cache)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Timings.SketchHits != 0 || warm.Timings.SketchRescans != 0 {
		t.Fatalf("NoInteriorSketch run reported sketch activity: %+v", warm.Timings)
	}
	if cache.InteriorLen() != 0 {
		t.Fatalf("NoInteriorSketch run cached %d interior entries", cache.InteriorLen())
	}
	ref, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, ref, warm)
}

// TestSpaceSigEmbedsEpoch: every structural cache key must carry the
// catalog's segment epoch, so regenerated file-backed catalogs can
// never cross-serve cached vectors; and all key formats must flow
// through the one keying helper (tier agreement by construction).
func TestSpaceSigEmbedsEpoch(t *testing.T) {
	cat := smallCatalog(t)
	e := New(cat, nil, Options{})
	q, _ := query.Parse(`SELECT x FROM T WHERE x > 6`)
	space, err := e.buildItemSpace(q)
	if err != nil {
		t.Fatal(err)
	}
	sig0 := e.spaceSig(space)
	cat.SetEpoch(0x3039)
	sig1 := e.spaceSig(space)
	if sig0 == sig1 {
		t.Fatal("epoch change did not change the space signature")
	}
	if !strings.Contains(sig1, "e3039") {
		t.Fatalf("space signature %q does not embed the epoch", sig1)
	}
	k := runKeys{space: sig1}
	for _, key := range []string{
		k.cond("T.x", "x > 6"),
		k.join("T~U", true),
		k.boolean("NOT x > 6"),
		k.subquery(256, 0, "EXISTS (...)", false),
		k.interior("m0|" + sig1 + "|L:x"),
	} {
		if !strings.Contains(key, sig1) {
			t.Fatalf("key %q does not embed the space signature", key)
		}
	}
	// Negation is part of the join identity even though labels collapse.
	if k.join("T~U", true) == k.join("T~U", false) {
		t.Fatal("join keys do not distinguish negation")
	}
}

// TestInvalidationDropsInteriorTiers: a range edit must drop the
// affected interior entries in both tiers (memory management — stale
// hits are impossible either way, but dead entries must not pile up).
func TestInvalidationDropsInteriorTiers(t *testing.T) {
	cat := interiorCatalog(t, 4096+300)
	e := New(cat, nil, Options{GridW: 16, GridH: 16})
	sc := NewSharedCache(0, 0)
	cache := NewRunCache()
	cache.AttachShared(sc)
	q, _ := query.Parse(interiorSQL)
	if _, err := e.RunCached(q, cache); err != nil {
		t.Fatal(err)
	}
	if cache.InteriorLen() == 0 || sc.Stats().InteriorEntries == 0 {
		t.Fatal("cold run filled no interior tiers")
	}
	// The edited condition is `a > 50` INSIDE the AND subtree — its
	// label is embedded in the AND's interior key.
	var cond *query.Cond
	query.Walk(q.Where, func(e query.Expr) {
		if c, ok := e.(*query.Cond); ok && cond == nil && c.Attr == "a" {
			cond = c
		}
	})
	if cond == nil {
		t.Fatal("no condition on a")
	}
	cache.InvalidateCond(cond)
	if cache.InteriorLen() != 0 {
		t.Fatalf("private interior tier kept %d entries across invalidation", cache.InteriorLen())
	}
	// The shared tier drops exactly the entries combining the edited
	// leaf (their keys embed its label); subtrees not touching it stay.
	for key := range sc.interior {
		if strings.Contains(key, cond.Label()) {
			t.Fatalf("shared interior tier kept an entry over the invalidated leaf: %q", key)
		}
	}
}
