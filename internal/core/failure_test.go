package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/relevance"
)

// Failure-injection tests: the engine must stay well-defined on
// degenerate and hostile data.

func TestInfValuesInColumn(t *testing.T) {
	cat := dataset.NewCatalog()
	tbl, _ := dataset.NewTable("I", dataset.Schema{{Name: "x", Kind: dataset.KindFloat}})
	for _, v := range []float64{1, 2, math.Inf(1), math.Inf(-1), 3} {
		if err := tbl.AppendRow(dataset.Float(v)); err != nil {
			t.Fatal(err)
		}
	}
	_ = cat.AddTable(tbl)
	e := New(cat, nil, Options{GridW: 4, GridH: 4})
	res, err := e.RunSQL(`SELECT x FROM I WHERE x > 2`)
	if err != nil {
		t.Fatal(err)
	}
	// +Inf fulfills x > 2 (distance 0); -Inf is infinitely distant
	// (clamps to the far color end).
	if got := res.Stats().NumResults; got != 2 { // 3 and +Inf
		t.Fatalf("results: %d", got)
	}
	for _, d := range res.Combined() {
		if math.IsInf(d, 0) {
			t.Fatal("combined distances must stay finite or NaN")
		}
	}
}

func TestSingleRowTable(t *testing.T) {
	cat := dataset.NewCatalog()
	tbl, _ := dataset.NewTable("S1", dataset.Schema{{Name: "x", Kind: dataset.KindFloat}})
	_ = tbl.AppendRow(dataset.Float(5))
	_ = cat.AddTable(tbl)
	e := New(cat, nil, Options{GridW: 4, GridH: 4})
	res, err := e.RunSQL(`SELECT x FROM S1 WHERE x > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 1 || res.Displayed != 1 || res.Stats().NumResults != 1 {
		t.Fatalf("single row: %+v", res.Stats())
	}
	if _, err := res.Image(1); err != nil {
		t.Fatal(err)
	}
}

func TestTinyGrid(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 1, GridH: 1})
	res, err := e.RunSQL(`SELECT x FROM T WHERE x > 5`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Displayed > 1 {
		t.Fatalf("1x1 grid displayed %d", res.Displayed)
	}
	w := res.OverallWindow()
	if w.Capacity() != 1 {
		t.Fatalf("capacity: %d", w.Capacity())
	}
}

func TestZeroWeightPredicate(t *testing.T) {
	// A predicate whose weight approaches zero stops influencing the
	// ranking: with w(x)=0.001 the ordering follows y alone.
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT x FROM T WHERE x > 9 WEIGHT 0.001 AND y > 5 WEIGHT 10`)
	if err != nil {
		t.Fatal(err)
	}
	// y = 9 - x, so y > 5 means x < 4; the top items should be small-x
	// despite x > 9 pulling the other way with negligible weight.
	top := res.TopK(3)
	for _, item := range top {
		if item > 4 {
			t.Fatalf("top items should follow the heavy predicate: %v", top)
		}
	}
}

func TestConstantColumn(t *testing.T) {
	cat := dataset.NewCatalog()
	tbl, _ := dataset.NewTable("C", dataset.Schema{{Name: "x", Kind: dataset.KindFloat}})
	for i := 0; i < 10; i++ {
		_ = tbl.AppendRow(dataset.Float(7))
	}
	_ = cat.AddTable(tbl)
	e := New(cat, nil, Options{GridW: 4, GridH: 4})
	// All fulfill.
	res, err := e.RunSQL(`SELECT x FROM C WHERE x >= 7`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats().NumResults != 10 {
		t.Fatalf("all-fulfilling: %+v", res.Stats())
	}
	// None fulfill: everything equidistant, displayed window uniform
	// dark (the paper's "almost black" case).
	res, err = e.RunSQL(`SELECT x FROM C WHERE x > 100`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats().NumResults != 0 {
		t.Fatalf("none-fulfilling: %+v", res.Stats())
	}
	for _, d := range res.Combined() {
		if d != relevance.Scale {
			t.Fatalf("uniform wrong results should sit at the dark end: %v", res.Combined())
		}
	}
}

func TestManyPredicates(t *testing.T) {
	// 27-predicate conjunction (the CAD shape) through the full stack.
	tblCat := smallCatalog(t)
	e := New(tblCat, nil, Options{GridW: 8, GridH: 8})
	sql := `SELECT x FROM T WHERE x > 0`
	for i := 0; i < 26; i++ {
		sql += ` AND x < 100`
	}
	res, err := e.RunSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := res.Windows()
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 28 { // overall + 27
		t.Fatalf("windows: %d", len(ws))
	}
}

func TestDegenerate2DAxes(t *testing.T) {
	// 2D arrangement with missing axis attributes degrades to the
	// center quadrants rather than failing.
	e := New(smallCatalog(t), nil, Options{
		GridW: 8, GridH: 8, Arrangement: Arrange2D, AxisX: "nope", AxisY: "",
	})
	res, err := e.RunSQL(`SELECT x FROM T WHERE x > 5`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Displayed == 0 {
		t.Fatal("nothing displayed")
	}
	if _, err := res.Image(2); err != nil {
		t.Fatal(err)
	}
}
