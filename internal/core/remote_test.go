package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/relevance"
)

// mapBackend is an in-memory SharedBackend standing in for the network
// KV: what one "node" puts, another gets.
type mapBackend struct {
	mu   sync.Mutex
	m    map[string][]byte
	gets int
	puts int
}

func newMapBackend() *mapBackend { return &mapBackend{m: make(map[string][]byte)} }

func (b *mapBackend) Get(key string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gets++
	v, ok := b.m[key]
	return v, ok
}

func (b *mapBackend) Put(key string, val []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.puts++
	if _, ok := b.m[key]; !ok {
		b.m[key] = val
	}
}

func TestSharedEntryCodecRoundTrip(t *testing.T) {
	pd := &predicateData{
		Attr:     query.BoundAttr{Table: "T", Attr: "x", Kind: dataset.KindInt},
		Values:   []float64{1, 2, math.NaN(), math.Copysign(0, -1)},
		Raw:      []float64{0, 1, math.Inf(1), 0.25},
		Signed:   []float64{0, -1, math.Inf(-1), 0.25},
		MinDB:    -3,
		MaxDB:    9,
		HasRange: true,
		Lo:       math.Inf(-1),
		Hi:       4.5,
		CStats:   relevance.BuildLeafChunkStats([]float64{0, 1, math.NaN(), 0.25}),
	}
	e := &sharedEntry{pd: pd, attr: "x", label: "x>6"}
	data, ok := encodeSharedEntry(e)
	if !ok {
		t.Fatal("materialized cond entry refused")
	}
	got, err := decodeSharedEntry(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.attr != e.attr || got.label != e.label {
		t.Fatalf("handles: %q/%q", got.attr, got.label)
	}
	g := got.pd
	if g.Attr != pd.Attr || g.MinDB != pd.MinDB || g.MaxDB != pd.MaxDB ||
		g.HasRange != pd.HasRange || g.Hi != pd.Hi || !math.IsInf(g.Lo, -1) {
		t.Fatalf("scalars differ: %+v", g)
	}
	for i := range pd.Values {
		for _, pair := range [][2]float64{{pd.Values[i], g.Values[i]}, {pd.Raw[i], g.Raw[i]}, {pd.Signed[i], g.Signed[i]}} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				t.Fatalf("vector element %d differs", i)
			}
		}
	}
	if g.CStats == nil || g.CStats.Chunks() != pd.CStats.Chunks() {
		t.Fatalf("chunk stats lost")
	}

	// Dists-only entries round-trip too.
	de := &sharedEntry{dists: []float64{3, math.NaN(), 1}, label: "J:T-U"}
	data, ok = encodeSharedEntry(de)
	if !ok {
		t.Fatal("dists entry refused")
	}
	got, err = decodeSharedEntry(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.dists) != 3 || got.label != de.label {
		t.Fatalf("dists entry mangled: %+v", got)
	}

	// Corruption surfaces as an error, not a bogus entry.
	if _, err := decodeSharedEntry(data[:len(data)-2]); err == nil {
		t.Fatal("truncated entry decoded")
	}
	if _, err := decodeSharedEntry(append(append([]byte(nil), data...), 1)); err == nil {
		t.Fatal("padded entry decoded")
	}
}

// TestSharedEntryCodecRefusesPushdownState: a leaf still carrying
// segment-pushdown state (lazily materialized Values backed by a local
// file reader) must never leave the process.
func TestSharedEntryCodecRefusesPushdownState(t *testing.T) {
	pd := &predicateData{
		Attr: query.BoundAttr{Table: "T", Attr: "x"},
		Raw:  []float64{0, 0}, Values: []float64{0, 0},
		skip: []bool{true},
	}
	if _, ok := encodeSharedEntry(&sharedEntry{pd: pd}); ok {
		t.Fatal("pushdown-state entry encoded")
	}
}

// TestRemoteBackendWarmsOtherNode: two shared tiers (two "processes")
// over the same catalog and one backend. Work paid on node A — leaf
// vectors, promoted quantile indexes, interior entries — serves node B
// without recomputation, bit-identically.
func TestRemoteBackendWarmsOtherNode(t *testing.T) {
	// The query needs a non-root interior node (the AND under the OR):
	// the deferred root itself is never interior-cached, so only a
	// nested subtree exercises the interior-entry transfer.
	cat := interiorCatalog(t, 2*4096+57)
	sql := interiorSQL
	q, err := query.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	e := New(cat, nil, Options{GridW: 8, GridH: 8})
	cold, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}

	backend := newMapBackend()
	opts := SharedOptions{AdmitMinCost: -1, Backend: backend}

	// Node A: first run fills the backend; second run promotes the leaf
	// indexes (and the interior entries were offered on the first).
	scA := NewSharedCacheOpts(opts)
	eA := New(cat, nil, Options{GridW: 8, GridH: 8})
	cA := NewRunCache()
	cA.AttachShared(scA)
	if _, err := eA.RunCached(q, cA); err != nil {
		t.Fatal(err)
	}
	if _, err := eA.RunCached(q, cA); err != nil {
		t.Fatal(err)
	}
	if st := scA.Stats(); st.RemotePuts == 0 {
		t.Fatalf("node A offered nothing to the fleet: %+v", st)
	}
	backend.mu.Lock()
	stored := len(backend.m)
	backend.mu.Unlock()
	if stored == 0 {
		t.Fatal("backend holds no entries")
	}

	// Node B: a different process — fresh engine, fresh caches — whose
	// very first run is served by the fleet: leaves arrive as shared
	// hits (no local compute), interior entries as sketch hits.
	scB := NewSharedCacheOpts(opts)
	eB := New(cat, nil, Options{GridW: 8, GridH: 8})
	cB := NewRunCache()
	cB.AttachShared(scB)
	q2, err := query.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	first, err := eB.RunCached(q2, cB)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, cold, first)
	if first.Timings.CacheMisses != 0 {
		t.Fatalf("node B recomputed %d leaves despite the fleet tier", first.Timings.CacheMisses)
	}
	if first.Timings.SharedHits == 0 || first.Timings.SketchHits == 0 {
		t.Fatalf("node B cold run not fleet-warmed: %+v", first.Timings)
	}
	st := scB.Stats()
	if st.RemoteHits == 0 {
		t.Fatalf("node B counted no remote hits: %+v", st)
	}

	// Node B's second run builds no quantile index either — it reuses
	// the ones node A promoted.
	before := scB.Stats().RemoteHits
	second, err := eB.RunCached(q2, cB)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, cold, second)
	if after := scB.Stats().RemoteHits; after <= before {
		t.Fatalf("promoted indexes not fetched remotely: %d -> %d", before, after)
	}
}

// TestRemoteBackendDegradesToMiss: a backend full of garbage (or
// answering nothing) must never break a run — decode failures fall back
// to local compute with identical results.
func TestRemoteBackendDegradesToMiss(t *testing.T) {
	cat := smallCatalog(t)
	q, err := query.Parse(`SELECT x FROM T WHERE x > 6 AND y < 5`)
	if err != nil {
		t.Fatal(err)
	}
	e := New(cat, nil, Options{GridW: 8, GridH: 8})
	cold, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	backend := newMapBackend()
	sc := NewSharedCacheOpts(SharedOptions{AdmitMinCost: -1, Backend: backend})
	c := NewRunCache()
	c.AttachShared(sc)
	res, err := e.RunCached(q, c)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, cold, res)

	// Poison every stored value and warm a fresh node: decodes fail,
	// computes happen locally, results stay right.
	backend.mu.Lock()
	for k := range backend.m {
		backend.m[k] = []byte{0xde, 0xad}
	}
	backend.mu.Unlock()
	sc2 := NewSharedCacheOpts(SharedOptions{AdmitMinCost: -1, Backend: backend})
	c2 := NewRunCache()
	c2.AttachShared(sc2)
	e2 := New(cat, nil, Options{GridW: 8, GridH: 8})
	res2, err := e2.RunCached(q, c2)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, cold, res2)
	if st := sc2.Stats(); st.RemoteMisses == 0 {
		t.Fatalf("poisoned values should count as remote misses: %+v", st)
	}
}
