package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/join"
	"repro/internal/query"
	"repro/internal/reduce"
	"repro/internal/relevance"
)

// Engine executes visual feedback queries against a catalog. An Engine
// is immutable after construction and safe for concurrent Run calls;
// the catalog must not be mutated while queries run.
type Engine struct {
	cat *dataset.Catalog
	reg *distance.Registry
	opt Options
}

// New creates an engine. reg may be nil (built-in distances only).
func New(cat *dataset.Catalog, reg *distance.Registry, opt Options) *Engine {
	if reg == nil {
		reg = distance.NewRegistry()
	}
	return &Engine{cat: cat, reg: reg, opt: opt.withDefaults()}
}

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *dataset.Catalog { return e.cat }

// Registry returns the engine's distance registry.
func (e *Engine) Registry() *distance.Registry { return e.reg }

// Options returns the engine's effective options.
func (e *Engine) Options() Options { return e.opt }

// RunSQL parses and runs a query in the VisDB dialect.
func (e *Engine) RunSQL(src string) (*Result, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	return e.Run(q)
}

// StageTimings records wall-clock durations of the pipeline stages of
// one Run, supporting the section 3 complexity discussion ("query
// processing time is dominated by the time needed for sorting") with a
// measured breakdown. Distances covers the per-predicate distance
// computation (tree building), Evaluate the normalization and weighted
// combination (which internally sorts per node), Sort the final
// relevance ranking, and Reduce the display reduction plus placement.
type StageTimings struct {
	Bind      time.Duration
	Distances time.Duration
	Evaluate  time.Duration
	Sort      time.Duration
	Reduce    time.Duration
	Total     time.Duration
}

// Run executes q: bind, compute per-predicate distances, combine, rank,
// reduce and arrange. The returned Result holds the relevance ranking,
// the per-window normalized distances, the stats-panel numbers and the
// per-stage timings.
func (e *Engine) Run(q *query.Query) (*Result, error) {
	start := time.Now()
	b, err := query.Bind(q, e.cat)
	if err != nil {
		return nil, err
	}
	space, err := e.buildItemSpace(q)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Engine:  e,
		Query:   q,
		Binding: b,
		Space:   space,
		N:       space.n,
		nodeOf:  make(map[query.Expr]*relevance.Node),
		preds:   make(map[*query.Cond]*predicateData),
	}
	res.Timings.Bind = time.Since(start)
	mark := time.Now()
	root, err := e.buildTree(q.Where, b, space, res)
	if err != nil {
		return nil, err
	}
	res.root = root
	res.Timings.Distances = time.Since(mark)
	mark = time.Now()
	budget := e.opt.GridW * e.opt.GridH
	eval, err := relevance.Evaluate(root, space.n, relevance.EvalOptions{
		Budget:         budget,
		Mode:           e.opt.Mode,
		NaiveNormalize: e.opt.NaiveNormalize,
		And:            e.opt.And,
		LpP:            e.opt.LpP,
		Parallel:       e.opt.Parallel,
	})
	if err != nil {
		return nil, err
	}
	res.Timings.Evaluate = time.Since(mark)
	res.Eval = eval
	res.Combined = eval.Combined
	res.Relevance = relevance.RelevanceFactors(eval.Combined)
	mark = time.Now()
	sorted, order := reduce.SortWithIndex(eval.Combined)
	res.Timings.Sort = time.Since(mark)
	res.sorted = sorted
	res.Order = order
	mark = time.Now()
	res.Displayed = e.displayCount(sorted, len(query.Predicates(q.Where)))
	res.buildPlacement()
	res.Timings.Reduce = time.Since(mark)
	res.Timings.Total = time.Since(start)
	return res, nil
}

// displayCount picks how many ranked items are displayed.
func (e *Engine) displayCount(sorted []float64, numPreds int) int {
	n := len(sorted)
	capacity := e.opt.GridW * e.opt.GridH
	// NaN (uncolorable) items never display.
	colorable := n
	for colorable > 0 && math.IsNaN(sorted[colorable-1]) {
		colorable--
	}
	if e.opt.PercentDisplayed > 0 {
		k := int(math.Round(e.opt.PercentDisplayed * float64(n)))
		if k > capacity {
			k = capacity
		}
		if k > colorable {
			k = colorable
		}
		return k
	}
	prefix := sorted[:colorable]
	r := capacity * (numPreds + 1)
	var k int
	if e.opt.DisableGapHeuristic {
		p := reduce.DisplayFraction(r, colorable, numPreds)
		k = reduce.QuantileCut(colorable, p)
	} else {
		k = reduce.Cut(prefix, r, numPreds)
	}
	if k > capacity {
		k = capacity
	}
	return k
}

// buildItemSpace materializes the totality of items: rows of a single
// table, or the (capped) cross product of two tables (section 4.4).
func (e *Engine) buildItemSpace(q *query.Query) (*itemSpace, error) {
	switch len(q.From) {
	case 1:
		t, err := e.cat.Table(q.From[0])
		if err != nil {
			return nil, err
		}
		return &itemSpace{tables: []*dataset.Table{t}, n: t.NumRows()}, nil
	case 2:
		lt, err := e.cat.Table(q.From[0])
		if err != nil {
			return nil, err
		}
		rt, err := e.cat.Table(q.From[1])
		if err != nil {
			return nil, err
		}
		pairs := join.Pairs(lt.NumRows(), rt.NumRows(), e.opt.MaxPairs)
		return &itemSpace{tables: []*dataset.Table{lt, rt}, pairs: pairs, n: len(pairs)}, nil
	default:
		return nil, fmt.Errorf("core: %d-table queries unsupported (1 or 2 tables)", len(q.From))
	}
}

// buildTree converts the bound condition tree into a relevance node
// tree, computing raw leaf distances. A nil condition yields an
// all-zeros leaf (every item is a correct answer).
func (e *Engine) buildTree(where query.Expr, b *query.Binding, space *itemSpace, res *Result) (*relevance.Node, error) {
	if where == nil {
		return &relevance.Node{Op: relevance.Leaf, Label: "true", Dists: make([]float64, space.n)}, nil
	}
	return e.exprNode(where, b, space, res, false)
}

// exprNode builds the node for one expression. negated handles the
// negation semantics of section 4.4: invertible comparison operators
// invert; everything else falls back to exact boolean evaluation with
// satisfied items at distance 0 and failing items uncolorable.
func (e *Engine) exprNode(expr query.Expr, b *query.Binding, space *itemSpace, res *Result, negated bool) (*relevance.Node, error) {
	switch n := expr.(type) {
	case *query.Cond:
		c := n
		if negated {
			if inv, ok := n.Op.Invert(); ok {
				c = &query.Cond{Attr: n.Attr, Op: inv, Value: n.Value, Lo: n.Lo, Hi: n.Hi,
					List: n.List, DistFunc: n.DistFunc, W: n.W}
				b.Attrs[c] = b.Attrs[n]
			} else {
				return e.booleanLeaf(n, b, space, res, true)
			}
		}
		pd, err := e.condData(c, b, space)
		if err != nil {
			return nil, err
		}
		node := &relevance.Node{Op: relevance.Leaf, Label: expr.Label(), Weight: expr.Weight(), Dists: pd.Raw}
		res.nodeOf[expr] = node
		if orig, ok := expr.(*query.Cond); ok {
			res.preds[orig] = pd
		}
		return node, nil
	case *query.BoolExpr:
		op := relevance.NodeAnd
		if n.Op == query.Or {
			op = relevance.NodeOr
		}
		if negated {
			// De Morgan: NOT(AND) = OR(NOT...), NOT(OR) = AND(NOT...).
			if op == relevance.NodeAnd {
				op = relevance.NodeOr
			} else {
				op = relevance.NodeAnd
			}
		}
		node := &relevance.Node{Op: op, Label: n.Label(), Weight: n.Weight()}
		for _, c := range n.Children {
			child, err := e.exprNode(c, b, space, res, negated)
			if err != nil {
				return nil, err
			}
			node.Children = append(node.Children, child)
		}
		res.nodeOf[expr] = node
		return node, nil
	case *query.Not:
		child, err := e.exprNode(n.Child, b, space, res, !negated)
		if err != nil {
			return nil, err
		}
		node := &relevance.Node{Op: relevance.NodeAnd, Label: n.Label(), Weight: n.Weight(),
			Children: []*relevance.Node{child}}
		res.nodeOf[expr] = node
		return node, nil
	case *query.JoinExpr:
		conn, ok := b.Joins[n]
		if !ok {
			return nil, fmt.Errorf("core: join %q not bound", n.Connection)
		}
		var dists []float64
		var err error
		if space.pairs == nil {
			// Single-table use of a connection: the join-partner-count
			// distance of section 4.4 — "if the user is only interested
			// in one relation and in the number of join partners that
			// each data item of this relation has with another relation,
			// the user might use the inverse of that number as the
			// distance". A partner is a row of the other relation that
			// fulfills the connection exactly (distance 0; use a
			// Within-mode connection for tolerance-based counting).
			dists, err = e.partnerCountDistances(conn, space)
		} else {
			dists, err = join.ConnDistances(conn, space.tables[0], space.tables[1], space.pairs, e.reg)
		}
		if err != nil {
			return nil, err
		}
		if negated {
			// Negated joins are uncolorable where the join holds exactly.
			for i, d := range dists {
				if d == 0 {
					dists[i] = math.NaN()
				} else {
					dists[i] = 0
				}
			}
		}
		node := &relevance.Node{Op: relevance.Leaf, Label: expr.Label(), Weight: n.Weight(), Dists: dists}
		res.nodeOf[expr] = node
		return node, nil
	case *query.SubqueryExpr:
		return e.subqueryNode(n, b, space, res, negated)
	default:
		return nil, fmt.Errorf("core: unsupported expression %T", expr)
	}
}

// partnerCountDistances computes the inverse-partner-count distance of
// a connection for every row of a single-table query. The FROM table
// may be either side of the connection; the other side is looked up in
// the catalog.
func (e *Engine) partnerCountDistances(conn dataset.Connection, space *itemSpace) ([]float64, error) {
	table := space.tables[0]
	var other *dataset.Table
	var err error
	switch table.Name() {
	case conn.Left:
		other, err = e.cat.Table(conn.Right)
	case conn.Right:
		// Reverse the connection so the FROM table sits on the left.
		conn = reverseConnection(conn)
		other, err = e.cat.Table(conn.Right)
	default:
		return nil, fmt.Errorf("core: connection %q does not touch table %s", conn.Name, table.Name())
	}
	if err != nil {
		return nil, err
	}
	counts, err := join.PartnerCounts(conn, table, other, 0, e.reg)
	if err != nil {
		return nil, err
	}
	return join.PartnerDistances(counts), nil
}

// reverseConnection swaps the sides of a connection.
func reverseConnection(c dataset.Connection) dataset.Connection {
	c.Left, c.Right = c.Right, c.Left
	c.LeftAttr, c.RightAttr = c.RightAttr, c.LeftAttr
	c.LeftAttr2, c.RightAttr2 = c.RightAttr2, c.LeftAttr2
	return c
}

// booleanLeaf builds a leaf from exact boolean evaluation: satisfied
// items get distance 0, failing items are uncolorable (NaN), matching
// "no distance values may be obtained and hence no coloring is
// possible" for negations (section 4.4).
func (e *Engine) booleanLeaf(c *query.Cond, b *query.Binding, space *itemSpace, res *Result, negate bool) (*relevance.Node, error) {
	dists := make([]float64, space.n)
	for i := 0; i < space.n; i++ {
		sat, err := boolEvalCond(c, b, space, i)
		if err != nil {
			return nil, err
		}
		if negate {
			sat = !sat
		}
		if sat {
			dists[i] = 0
		} else {
			dists[i] = math.NaN()
		}
	}
	label := c.Label()
	if negate {
		label = "NOT " + label
	}
	node := &relevance.Node{Op: relevance.Leaf, Label: label, Weight: c.Weight(), Dists: dists}
	res.nodeOf[c] = node
	return node, nil
}

// subqueryNode implements the nested-query semantics of section 4.4:
// EXISTS and IN score each outer item by the minimum distance over the
// inner relation ("the data item most closely fulfilling the subquery
// condition"); the negated forms are colorable only via boolean
// evaluation (yellow where satisfied, uncolorable otherwise).
func (e *Engine) subqueryNode(sq *query.SubqueryExpr, b *query.Binding, space *itemSpace, res *Result, negated bool) (*relevance.Node, error) {
	subBinding, ok := b.Subs[sq]
	if !ok {
		return nil, fmt.Errorf("core: subquery not bound")
	}
	if len(sq.Sub.From) != 1 {
		return nil, fmt.Errorf("core: subqueries over %d tables unsupported", len(sq.Sub.From))
	}
	inner, err := e.cat.Table(sq.Sub.From[0])
	if err != nil {
		return nil, err
	}
	// Combined inner-condition distance per inner row, using a nested
	// evaluation (normalization-free raw means keep the scale of the
	// attribute distance; we use normalized values for robustness).
	innerSpace := &itemSpace{tables: []*dataset.Table{inner}, n: inner.NumRows()}
	innerRes := &Result{Engine: e, nodeOf: make(map[query.Expr]*relevance.Node), preds: make(map[*query.Cond]*predicateData)}
	innerRoot, err := e.buildTree(sq.Sub.Where, subBinding, innerSpace, innerRes)
	if err != nil {
		return nil, err
	}
	innerEval, err := relevance.Evaluate(innerRoot, innerSpace.n, relevance.EvalOptions{
		Budget: e.opt.GridW * e.opt.GridH,
		Mode:   e.opt.Mode,
	})
	if err != nil {
		return nil, err
	}
	innerDist := innerEval.Combined

	mode := sq.Mode
	if negated {
		switch mode {
		case query.Exists:
			mode = query.NotExists
		case query.NotExists:
			mode = query.Exists
		case query.InQuery:
			mode = query.NotInQuery
		case query.NotInQuery:
			mode = query.InQuery
		}
	}
	dists := make([]float64, space.n)
	switch mode {
	case query.Exists:
		// Uncorrelated EXISTS: the same minimum for every outer item.
		best := math.NaN()
		for _, d := range innerDist {
			if math.IsNaN(d) {
				continue
			}
			if math.IsNaN(best) || d < best {
				best = d
			}
		}
		for i := range dists {
			dists[i] = best
		}
	case query.InQuery:
		attr := b.InAttrs[sq]
		innerAttr := subBinding.Selects[0]
		conn := dataset.Connection{
			Name: "in-subquery", Left: attr.Table, Right: innerAttr.Table,
			LeftAttr: attr.Attr, RightAttr: innerAttr.Attr,
			Metric: dataset.MetricNumeric, Mode: dataset.ModeEqual,
		}
		if attr.Kind.IsStringy() {
			conn.Metric = dataset.MetricString
		} else if attr.Kind == dataset.KindTime {
			conn.Metric = dataset.MetricTime
		}
		outer, err := space.tableByName(attr.Table)
		if err != nil {
			return nil, err
		}
		perRow, err := join.MinDistancePerLeft(conn, outer, inner, innerDist, e.reg)
		if err != nil {
			return nil, err
		}
		for i := range dists {
			row, err := space.rowFor(i, attr.Table)
			if err != nil {
				return nil, err
			}
			dists[i] = perRow[row]
		}
	case query.NotExists, query.NotInQuery:
		sat, err := e.boolSubquery(sq, mode, b, subBinding, space, inner, innerDist)
		if err != nil {
			return nil, err
		}
		for i := range dists {
			if sat[i] {
				dists[i] = 0
			} else {
				dists[i] = math.NaN()
			}
		}
	}
	node := &relevance.Node{Op: relevance.Leaf, Label: sq.Label(), Weight: sq.Weight(), Dists: dists}
	res.nodeOf[sq] = node
	return node, nil
}

// boolSubquery evaluates NOT EXISTS / NOT IN exactly. The inner
// condition counts as satisfied where its combined distance is zero.
func (e *Engine) boolSubquery(sq *query.SubqueryExpr, mode query.SubqueryMode, b, subBinding *query.Binding, space *itemSpace, inner *dataset.Table, innerDist []float64) ([]bool, error) {
	anyInner := false
	for _, d := range innerDist {
		if d == 0 {
			anyInner = true
			break
		}
	}
	sat := make([]bool, space.n)
	switch mode {
	case query.NotExists:
		for i := range sat {
			sat[i] = !anyInner
		}
	case query.NotInQuery:
		attr := b.InAttrs[sq]
		innerAttr := subBinding.Selects[0]
		outer, err := space.tableByName(attr.Table)
		if err != nil {
			return nil, err
		}
		innerCol, err := inner.Column(innerAttr.Attr)
		if err != nil {
			return nil, err
		}
		members := make(map[string]bool)
		for r := 0; r < inner.NumRows(); r++ {
			if innerDist[r] == 0 && !innerCol.IsNull(r) {
				members[innerCol.Value(r).String()] = true
			}
		}
		outerCol, err := outer.Column(attr.Attr)
		if err != nil {
			return nil, err
		}
		for i := range sat {
			row, err := space.rowFor(i, attr.Table)
			if err != nil {
				return nil, err
			}
			if outerCol.IsNull(row) {
				sat[i] = false
				continue
			}
			sat[i] = !members[outerCol.Value(row).String()]
		}
	}
	return sat, nil
}
