package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/join"
	"repro/internal/query"
	"repro/internal/reduce"
	"repro/internal/relevance"
	"repro/internal/topk"
)

// Engine executes visual feedback queries against a catalog. An Engine
// is immutable after construction and safe for concurrent Run calls;
// the catalog must not be mutated while queries run.
type Engine struct {
	cat *dataset.Catalog
	reg *distance.Registry
	opt Options
}

// New creates an engine. reg may be nil (built-in distances only).
func New(cat *dataset.Catalog, reg *distance.Registry, opt Options) *Engine {
	if reg == nil {
		reg = distance.NewRegistry()
	}
	return &Engine{cat: cat, reg: reg, opt: opt.withDefaults()}
}

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *dataset.Catalog { return e.cat }

// Registry returns the engine's distance registry.
func (e *Engine) Registry() *distance.Registry { return e.reg }

// Options returns the engine's effective options.
func (e *Engine) Options() Options { return e.opt }

// RunSQL parses and runs a query in the VisDB dialect.
func (e *Engine) RunSQL(src string) (*Result, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	return e.Run(q)
}

// StageTimings records wall-clock durations of the pipeline stages of
// one Run, supporting the section 3 complexity discussion ("query
// processing time is dominated by the time needed for sorting") with a
// measured breakdown. Distances covers the per-predicate distance
// computation (tree building), Evaluate the normalization and weighted
// combination of the query tree below the root, Sort the final
// full-sort relevance ranking (FullSort or Arrange2D runs), Select the
// selection-based partial ranking (the default rank-before-scale path,
// which ranks RAW root values and materializes only the display
// budget), Scale the final monotonic transforms applied to the top-k
// survivors (including the clamp-tie cut), and Reduce the display
// reduction plus placement. Exactly one of Sort and Select is nonzero
// per run; Scale is nonzero only on the Select path.
type StageTimings struct {
	Bind      time.Duration
	Distances time.Duration
	Evaluate  time.Duration
	Sort      time.Duration
	Select    time.Duration
	Scale     time.Duration
	Reduce    time.Duration
	Total     time.Duration
	// CacheHits and CacheMisses attribute the Distances stage of a
	// RunCached run: how many leaf vectors were served from the cache
	// versus recomputed. SharedHits is the subset of CacheHits served
	// by the catalog-level shared tier (another session computed the
	// vector, or this session waited on its in-flight fill). All are
	// zero for uncached runs.
	CacheHits, CacheMisses, SharedHits int
	// Pruned and Chunks attribute the block pruning of the
	// rank-before-scale path: evaluator chunks whose root combine work
	// was skipped because their raw lower bound could not beat the
	// running top-k threshold, out of the total chunk count. Warm
	// reruns on saturated selections (many exact answers) prune most
	// chunks; cold runs prune nothing (the per-leaf chunk stats that
	// feed the bounds are built by the session cache on first reuse).
	Pruned, Chunks int
	// SketchHits and SketchRescans attribute the incremental interior
	// normalization of the Evaluate stage: interior nodes whose combine
	// pass was skipped because their raw combined vector was cached
	// (the whole subtree's fused passes are saved), and how many
	// evaluator chunks the entries' quantile sketches re-scanned to
	// answer the normalization ranges exactly. A warm weight-only rerun
	// shows SketchHits > 0 with SketchRescans a small fraction of
	// Chunks — the measured "last full-array pass" the sketch kills.
	// Zero for uncached runs and under Options.NoInteriorSketch.
	SketchHits, SketchRescans int
	// SegsSkipped and Segs attribute the segment-stats pushdown of cold
	// file-backed scans: storage segments whose decode was skipped
	// because the catalog footer's per-segment stats proved every row in
	// range (distance exactly 0), out of the segments the run's cold
	// computes considered. Zero on warm runs (nothing is recomputed),
	// for uncached runs, for pre-v3 catalogs, and under
	// Options.NoSegmentStats.
	SegsSkipped, Segs int
}

// Run executes q: bind, compute per-predicate distances, combine, rank,
// reduce and arrange. The returned Result holds the relevance ranking,
// the per-window normalized distances, the stats-panel numbers and the
// per-stage timings.
func (e *Engine) Run(q *query.Query) (*Result, error) {
	return e.RunCached(q, nil)
}

// RunCtx is Run bounded by ctx: the run polls ctx between pipeline
// stages, between distance chunks, and between evaluator chunks, and
// aborts with an error wrapping ctx.Err() once the context is done. An
// aborted run leaves the session cache consistent — completed leaf
// vectors stay cached (they are correct), the run's pooled buffers
// return to the pool, and no partial result escapes.
func (e *Engine) RunCtx(ctx context.Context, q *query.Query) (*Result, error) {
	return e.RunCachedCtx(ctx, q, nil)
}

// RunCachedCtx is RunCached bounded by ctx (see RunCtx).
func (e *Engine) RunCachedCtx(ctx context.Context, q *query.Query, cache *RunCache) (*Result, error) {
	start := time.Now()
	b, err := query.Bind(q, e.cat)
	if err != nil {
		return nil, err
	}
	return e.runBound(ctx, q, b, cache, start)
}

// RunPreboundCtx is RunPrebound bounded by ctx (see RunCtx).
func (e *Engine) RunPreboundCtx(ctx context.Context, q *query.Query, b *query.Binding, cache *RunCache) (*Result, error) {
	start := time.Now()
	if b == nil || b.Query != q {
		return nil, fmt.Errorf("core: binding does not belong to this query")
	}
	if b.Catalog != e.cat {
		return nil, fmt.Errorf("core: binding was resolved against a different catalog")
	}
	return e.runBound(ctx, q, b, cache, start)
}

// RunCached executes q like Run, but reuses cache across calls: leaf
// distance vectors whose structural signature is unchanged are served
// from the cache instead of recomputed, and the evaluation stage writes
// into buffers pooled in the cache instead of allocating. A weight-only
// rerun recomputes nothing below the combination stage; a single-slider
// range drag recomputes exactly one leaf. Cached runs are bit-identical
// to cold ones.
//
// The pooling has a sharp edge: each RunCached call recycles the
// evaluation buffers of the previous call on the same cache, so a
// Result is only valid until the next RunCached with that cache, and a
// cache must not serve concurrent runs. Sessions (one user, one
// interaction loop) use it via Session.Recalculate; use Run for
// concurrent or long-lived results. A nil cache makes RunCached
// identical to Run.
//
// When the cache is backed by a catalog-level SharedCache, leaf
// lookups fall through private → shared → recompute, and recomputed
// leaves fill the shared tier once for every session on the catalog.
func (e *Engine) RunCached(q *query.Query, cache *RunCache) (*Result, error) {
	return e.RunCachedCtx(context.Background(), q, cache)
}

// RunPrebound is RunCached with the query binding supplied by the
// caller — the interaction loop binds once and reruns many times (the
// engine never mutates a binding, so one binding may serve any number
// of runs, concurrent ones included). The binding must come from
// query.Bind of this exact query AST against this engine's catalog;
// reparse or requery means rebind.
func (e *Engine) RunPrebound(q *query.Query, b *query.Binding, cache *RunCache) (*Result, error) {
	return e.RunPreboundCtx(context.Background(), q, b, cache)
}

// runBound is the shared tail of Run/RunCached/RunPrebound: everything
// after name resolution.
func (e *Engine) runBound(ctx context.Context, q *query.Query, b *query.Binding, cache *RunCache, start time.Time) (*Result, error) {
	// A context that can never be canceled (Background) needs no
	// polling; everything else turns into a per-chunk checkpoint.
	var checkpoint func() error
	if ctx != nil && ctx.Done() != nil {
		checkpoint = func() error {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("core: run canceled: %w", err)
			}
			return nil
		}
	}
	space, err := e.buildItemSpace(q)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Engine:  e,
		Query:   q,
		Binding: b,
		Space:   space,
		N:       space.n,
		nodeOf:  make(map[query.Expr]*relevance.Node),
		preds:   make(map[*query.Cond]*predicateData),
	}
	res.checkpoint = checkpoint
	runOK := false
	if cache != nil {
		cache.beginRun()
		// A failed run must not recycle the buffers of the previous
		// (still live) Result; endRun(false) returns only this run's
		// buffers to the pool.
		defer func() { cache.endRun(runOK) }()
		res.cache = cache
		res.cacheSig = e.spaceSig(space)
		res.keys = runKeys{space: res.cacheSig}
	}
	res.Timings.Bind = time.Since(start)
	mark := time.Now()
	root, err := e.buildTree(q.Where, b, space, res, e.opt.Workers)
	if err != nil {
		return nil, err
	}
	res.root = root
	res.Timings.Distances = time.Since(mark)
	if cache != nil {
		res.Timings.CacheHits, res.Timings.CacheMisses, res.Timings.SharedHits = cache.runStats()
		res.Timings.SegsSkipped, res.Timings.Segs = cache.runSegStats()
	}
	mark = time.Now()
	budget := e.opt.GridW * e.opt.GridH
	evalOpts := relevance.EvalOptions{
		Budget:         budget,
		Mode:           e.opt.Mode,
		NaiveNormalize: e.opt.NaiveNormalize,
		And:            e.opt.And,
		LpP:            e.opt.LpP,
		Parallel:       e.opt.Parallel,
		Workers:        e.opt.Workers,
		// Rank-before-scale: on the selection path the root's final
		// monotonic transforms apply only to the top-k survivors, so
		// the root is evaluated raw and deferred.
		DeferRoot: !e.fullSort(),
		// Per-chunk cancellation: a request deadline interrupts the
		// evaluation (and the deferred ranking) mid-sweep.
		Checkpoint: checkpoint,
	}
	if cache != nil {
		evalOpts.Alloc = cache.alloc
		evalOpts.LazyLeaves = true
		if !e.opt.NoInteriorSketch {
			// Incremental interior normalization: interior nodes whose
			// subtree signature matches a cached entry skip their fused
			// combine pass and answer their normalization range from the
			// entry's quantile sketch. Keys compose the evaluator's
			// structural signature — whose leaves are the full leaf cache
			// keys (leafIDOf), pinning item space, segment epoch and
			// literals — so a hit can never cross data or query identity.
			keys := res.keys
			evalOpts.LeafID = res.leafIDOf
			evalOpts.InteriorFetch = func(sig string) *relevance.InteriorEntry {
				return cache.interiorFetch(keys.interior(sig))
			}
			evalOpts.InteriorStore = func(sig string, en *relevance.InteriorEntry) {
				cache.interiorStore(keys.interior(sig), en)
			}
		}
	}
	eval, err := relevance.Evaluate(root, space.n, evalOpts)
	if err != nil {
		return nil, err
	}
	res.Timings.Evaluate = time.Since(mark)
	res.Timings.SketchHits, res.Timings.SketchRescans = eval.SketchHits, eval.SketchRescans
	res.Eval = eval
	numPreds := len(query.Predicates(q.Where))
	mark = time.Now()
	// colorable is the count of non-NaN combined distances (uncolorable
	// items never display).
	var colorable int
	switch {
	case e.fullSort():
		// Exact O(n log n) ranking of every item — the paper's
		// "dominating" sort, kept for ablations, exact quantiles and the
		// 2D arrangement (which re-filters the whole ranking).
		res.combined = eval.Combined
		colorable = space.n - relevance.CountNaN(eval.Combined)
		sorted, order := reduce.SortWithIndex(eval.Combined)
		res.sorted, res.Order, res.rankedK = sorted, order, space.n
		res.Timings.Sort = time.Since(mark)
	case eval.Deferred():
		// Rank-before-scale selection: rank the RAW root values —
		// skipping chunks whose bound cannot beat the threshold carried
		// over from the previous recalculation — and scale only the
		// survivors. Combined materializes lazily (Result.Combined).
		k := e.selectBudget(space.n)
		seed := math.NaN()
		var vals []float64
		var idx []int
		if cache != nil {
			seed = cache.rootSeed(res.cacheSig)
			vals, idx = cache.alloc(space.n), cache.allocInt(space.n)
		}
		rk, err := eval.RankRoot(k, seed, vals, idx)
		if err != nil {
			return nil, err
		}
		res.sorted, res.Order, res.rankedK = rk.Sorted, rk.Order, rk.K
		colorable = space.n - rk.NaNs
		res.Timings.Select = time.Since(mark) - rk.ScaleTime
		res.Timings.Scale = rk.ScaleTime
		res.Timings.Pruned, res.Timings.Chunks = rk.Pruned, rk.Chunks
		if cache != nil {
			cache.storeRootSeed(res.cacheSig, rk.Threshold)
		}
	default:
		// Deferral declined (pathological weights): select on the
		// eagerly scaled vector. Cached runs rank into pooled buffers
		// (identical output).
		res.combined = eval.Combined
		colorable = space.n - relevance.CountNaN(eval.Combined)
		k := e.selectBudget(space.n)
		var sorted []float64
		var order []int
		if cache != nil {
			sorted, order = topk.SelectKWithIndexInto(eval.Combined, k, cache.alloc(space.n), cache.allocInt(space.n))
		} else {
			sorted, order = topk.SelectKWithIndex(eval.Combined, k)
		}
		res.sorted, res.Order, res.rankedK = sorted, order, k
		res.Timings.Select = time.Since(mark)
	}
	mark = time.Now()
	res.Displayed = e.displayCount(res.sorted[:res.rankedK], colorable, space.n, numPreds)
	res.buildPlacement()
	res.Timings.Reduce = time.Since(mark)
	res.Timings.Total = time.Since(start)
	runOK = true
	return res, nil
}

// fullSort reports whether this engine ranks with a full sort: set
// explicitly, or forced by the 2D arrangement whose combined-quantile
// refinement re-filters the complete ranking.
func (e *Engine) fullSort() bool {
	return e.opt.FullSort || e.opt.Arrangement == Arrange2D
}

// selectBudget is how many leading ranks the selection path
// materializes: the window capacity plus the ~25% margin the gap
// heuristic of section 5.1 inspects past the quantile cut (and a small
// constant for quantile rounding), clamped to n. Any display cut the
// full sort could produce is derivable from this prefix.
func (e *Engine) selectBudget(n int) int {
	capacity := e.opt.GridW * e.opt.GridH
	k := capacity + capacity/4 + 32
	if k > n {
		k = n
	}
	return k
}

// displayCount picks how many ranked items are displayed. rankedPrefix
// holds the leading ranks in ascending distance order (the whole
// ranking under FullSort), colorable the number of non-NaN combined
// distances, and total the totality of items n.
func (e *Engine) displayCount(rankedPrefix []float64, colorable, total, numPreds int) int {
	capacity := e.opt.GridW * e.opt.GridH
	if colorable < 0 {
		colorable = 0
	}
	if e.opt.PercentDisplayed > 0 {
		k := int(math.Round(e.opt.PercentDisplayed * float64(total)))
		if k > capacity {
			k = capacity
		}
		if k > colorable {
			k = colorable
		}
		// With an all-NaN predicate (colorable == 0) nothing displays;
		// the clamp also keeps k non-negative for any inputs.
		if k < 0 {
			k = 0
		}
		return k
	}
	r := capacity * (numPreds + 1)
	var k int
	if e.opt.DisableGapHeuristic {
		p := reduce.DisplayFraction(r, colorable, numPreds)
		k = reduce.QuantileCut(colorable, p)
	} else {
		prefix := rankedPrefix
		if colorable < len(prefix) {
			// The ranked prefix is NaN-last, so its first colorable
			// entries are exactly the finite distances.
			prefix = prefix[:colorable]
		}
		k = reduce.CutPrefix(prefix, colorable, r, numPreds)
	}
	if k > capacity {
		k = capacity
	}
	if k < 0 {
		k = 0
	}
	return k
}

// buildItemSpace materializes the totality of items: rows of a single
// table, or the (capped) cross product of two tables (section 4.4).
func (e *Engine) buildItemSpace(q *query.Query) (*itemSpace, error) {
	switch len(q.From) {
	case 1:
		t, err := e.cat.Table(q.From[0])
		if err != nil {
			return nil, err
		}
		return &itemSpace{tables: []*dataset.Table{t}, n: t.NumRows()}, nil
	case 2:
		lt, err := e.cat.Table(q.From[0])
		if err != nil {
			return nil, err
		}
		rt, err := e.cat.Table(q.From[1])
		if err != nil {
			return nil, err
		}
		pairs := join.Pairs(lt.NumRows(), rt.NumRows(), e.opt.MaxPairs)
		return &itemSpace{tables: []*dataset.Table{lt, rt}, pairs: pairs, n: len(pairs)}, nil
	default:
		return nil, fmt.Errorf("core: %d-table queries unsupported (1 or 2 tables)", len(q.From))
	}
}

// buildTree converts the bound condition tree into a relevance node
// tree, computing raw leaf distances. A nil condition yields an
// all-zeros leaf (every item is a correct answer).
func (e *Engine) buildTree(where query.Expr, b *query.Binding, space *itemSpace, res *Result, workers int) (*relevance.Node, error) {
	if where == nil {
		return &relevance.Node{Op: relevance.Leaf, Label: "true", Dists: make([]float64, space.n)}, nil
	}
	return e.exprNode(where, b, space, res, false, workers)
}

// exprNode builds the node for one expression. negated handles the
// negation semantics of section 4.4: invertible comparison operators
// invert; everything else falls back to exact boolean evaluation with
// satisfied items at distance 0 and failing items uncolorable.
func (e *Engine) exprNode(expr query.Expr, b *query.Binding, space *itemSpace, res *Result, negated bool, workers int) (*relevance.Node, error) {
	// Per-node cancellation poll: a request deadline cuts the Distances
	// stage off between leaf computations (the evaluator's per-chunk
	// checkpoints cover everything after). Leaves that completed before
	// the deadline stay cached — they are correct — so the retry after
	// a timeout resumes instead of starting over.
	if err := res.poll(); err != nil {
		return nil, err
	}
	switch n := expr.(type) {
	case *query.Cond:
		attr, bound := b.Attrs[n]
		if !bound {
			return nil, fmt.Errorf("core: condition %q not bound", n.Label())
		}
		c := n
		if negated {
			if inv, ok := n.Op.Invert(); ok {
				// The inverted condition is a private rewrite: the shared
				// binding is never touched, so a binding stays read-only
				// for its whole life and reruns (and concurrent runs) can
				// reuse it.
				c = &query.Cond{Attr: n.Attr, Op: inv, Value: n.Value, Lo: n.Lo, Hi: n.Hi,
					List: n.List, DistFunc: n.DistFunc, W: n.W}
			} else {
				return e.booleanLeaf(n, b, space, res, true, workers)
			}
		}
		compute := func() (*predicateData, error) {
			pd, err := e.condData(c, attr, space, workers)
			if err == nil && res.cache != nil && pd.Segs > 0 {
				// Segment-pushdown attribution happens here, inside the
				// compute closure, so only the run that actually paid for
				// the cold scan counts it (cache hits recompute nothing).
				res.cache.addSegStats(pd.SegsSkipped, pd.Segs)
			}
			return pd, err
		}
		var pd *predicateData
		var li leafIndexes
		var err error
		var key string
		if res.cache != nil {
			// The cache key (runKeys.cond) is the condition's structural
			// signature: bound table.attr plus Label (operator, literals,
			// distance function — Label excludes the weighting factor by
			// construction), so weight-only reruns hit unconditionally.
			// The invalidation handle is the ORIGINAL condition's label
			// (n, not the inverted copy c): SetRange edits and invalidates
			// the condition as written in the query, and the two labels
			// differ under negation.
			key = res.keys.cond(attr.Qualified(), c.Label())
			pd, li, err = res.cache.condFetch(key, n.Attr, n.Label(), e.opt.Arrangement == Arrange2D, compute)
		} else {
			pd, err = compute()
		}
		if err != nil {
			return nil, err
		}
		cs := li.cstats
		if cs == nil {
			// Cold file-backed computes synthesize their chunk stats from
			// the catalog footer (predicateData.CStats), so deferred-root
			// block pruning works on the very first run — the session
			// cache's own index exists only from the first REUSE on.
			cs = pd.CStats
		}
		node := &relevance.Node{Op: relevance.Leaf, Label: expr.Label(), Weight: expr.Weight(), Dists: pd.Raw,
			Quantiles: li.quant, ChunkStats: cs}
		if key != "" {
			res.setLeafID(node, key)
		}
		res.setNode(expr, node)
		if orig, ok := expr.(*query.Cond); ok {
			res.setPred(orig, pd)
		}
		return node, nil
	case *query.BoolExpr:
		op := relevance.NodeAnd
		if n.Op == query.Or {
			op = relevance.NodeOr
		}
		if negated {
			// De Morgan: NOT(AND) = OR(NOT...), NOT(OR) = AND(NOT...).
			if op == relevance.NodeAnd {
				op = relevance.NodeOr
			} else {
				op = relevance.NodeAnd
			}
		}
		node := &relevance.Node{Op: op, Label: n.Label(), Weight: n.Weight()}
		children := make([]*relevance.Node, len(n.Children))
		if workers > 1 && len(n.Children) > 1 {
			// Build sibling predicate subtrees concurrently: each child
			// fills only its own distance vectors, Result's maps are
			// mutex-guarded, and the binding is read-only during runs
			// (negation rewrites condition copies, never the binding), so
			// negating subtrees parallelize like any other. The worker
			// budget is split between siblings (and the sibling fan-out
			// itself bounded by it), so total concurrency composes to
			// ≈ workers instead of multiplying.
			childWorkers := workers / len(n.Children)
			if childWorkers < 1 {
				childWorkers = 1
			}
			err := parallelFor(len(n.Children), workers, 1, func(from, to int) error {
				for i := from; i < to; i++ {
					child, err := e.exprNode(n.Children[i], b, space, res, negated, childWorkers)
					if err != nil {
						return err
					}
					children[i] = child
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		} else {
			for i, c := range n.Children {
				child, err := e.exprNode(c, b, space, res, negated, workers)
				if err != nil {
					return nil, err
				}
				children[i] = child
			}
		}
		node.Children = children
		res.setNode(expr, node)
		return node, nil
	case *query.Not:
		child, err := e.exprNode(n.Child, b, space, res, !negated, workers)
		if err != nil {
			return nil, err
		}
		node := &relevance.Node{Op: relevance.NodeAnd, Label: n.Label(), Weight: n.Weight(),
			Children: []*relevance.Node{child}}
		res.setNode(expr, node)
		return node, nil
	case *query.JoinExpr:
		conn, ok := b.Joins[n]
		if !ok {
			return nil, fmt.Errorf("core: join %q not bound", n.Connection)
		}
		compute := func() ([]float64, error) {
			var dists []float64
			var err error
			if space.pairs == nil {
				// Single-table use of a connection: the join-partner-count
				// distance of section 4.4 — "if the user is only interested
				// in one relation and in the number of join partners that
				// each data item of this relation has with another relation,
				// the user might use the inverse of that number as the
				// distance". A partner is a row of the other relation that
				// fulfills the connection exactly (distance 0; use a
				// Within-mode connection for tolerance-based counting).
				dists, err = e.partnerCountDistances(conn, space, workers)
			} else {
				out := make([]float64, len(space.pairs))
				err = parallelFor(len(space.pairs), workers, itemChunk, func(from, to int) error {
					return join.ConnDistancesRange(conn, space.tables[0], space.tables[1], space.pairs, out, from, to, e.reg)
				})
				dists = out
			}
			if err != nil {
				return nil, err
			}
			if negated {
				// Negated joins are uncolorable where the join holds
				// exactly. The rewrite happens before the vector is cached
				// (the key carries the negation flag), so cached vectors
				// are never re-mutated.
				for i, d := range dists {
					if d == 0 {
						dists[i] = math.NaN()
					} else {
						dists[i] = 0
					}
				}
			}
			return dists, nil
		}
		var dists []float64
		var li leafIndexes
		var err error
		var key string
		if res.cache != nil {
			key = res.keys.join(n.Label(), negated)
			dists, li, err = res.cache.leafFetch(key, "", n.Label(), compute)
		} else {
			dists, err = compute()
		}
		if err != nil {
			return nil, err
		}
		node := &relevance.Node{Op: relevance.Leaf, Label: expr.Label(), Weight: n.Weight(), Dists: dists,
			Quantiles: li.quant, ChunkStats: li.cstats}
		if key != "" {
			res.setLeafID(node, key)
		}
		res.setNode(expr, node)
		return node, nil
	case *query.SubqueryExpr:
		return e.subqueryNode(n, b, space, res, negated, workers)
	default:
		return nil, fmt.Errorf("core: unsupported expression %T", expr)
	}
}

// partnerCountDistances computes the inverse-partner-count distance of
// a connection for every row of a single-table query. The FROM table
// may be either side of the connection; the other side is looked up in
// the catalog.
func (e *Engine) partnerCountDistances(conn dataset.Connection, space *itemSpace, workers int) ([]float64, error) {
	table := space.tables[0]
	var other *dataset.Table
	var err error
	switch table.Name() {
	case conn.Left:
		other, err = e.cat.Table(conn.Right)
	case conn.Right:
		// Reverse the connection so the FROM table sits on the left.
		conn = reverseConnection(conn)
		other, err = e.cat.Table(conn.Right)
	default:
		return nil, fmt.Errorf("core: connection %q does not touch table %s", conn.Name, table.Name())
	}
	if err != nil {
		return nil, err
	}
	// Each left row scans the partner relation independently; chunk the
	// O(n·m) count across the worker pool.
	counts := make([]int, table.NumRows())
	if err := parallelFor(len(counts), workers, 16, func(from, to int) error {
		return join.PartnerCountsRange(conn, table, other, 0, counts, from, to, e.reg)
	}); err != nil {
		return nil, err
	}
	return join.PartnerDistances(counts), nil
}

// reverseConnection swaps the sides of a connection.
func reverseConnection(c dataset.Connection) dataset.Connection {
	c.Left, c.Right = c.Right, c.Left
	c.LeftAttr, c.RightAttr = c.RightAttr, c.LeftAttr
	c.LeftAttr2, c.RightAttr2 = c.RightAttr2, c.LeftAttr2
	return c
}

// booleanLeaf builds a leaf from exact boolean evaluation: satisfied
// items get distance 0, failing items are uncolorable (NaN), matching
// "no distance values may be obtained and hence no coloring is
// possible" for negations (section 4.4).
func (e *Engine) booleanLeaf(c *query.Cond, b *query.Binding, space *itemSpace, res *Result, negate bool, workers int) (*relevance.Node, error) {
	label := c.Label()
	if negate {
		label = "NOT " + label
	}
	compute := func() ([]float64, error) {
		dists := make([]float64, space.n)
		if err := parallelFor(space.n, workers, itemChunk, func(from, to int) error {
			for i := from; i < to; i++ {
				sat, err := boolEvalCond(c, b, space, i)
				if err != nil {
					return err
				}
				if negate {
					sat = !sat
				}
				if sat {
					dists[i] = 0
				} else {
					dists[i] = math.NaN()
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		return dists, nil
	}
	var dists []float64
	var li leafIndexes
	var err error
	var key string
	if res.cache != nil {
		key = res.keys.boolean(label)
		dists, li, err = res.cache.leafFetch(key, c.Attr, c.Label(), compute)
	} else {
		dists, err = compute()
	}
	if err != nil {
		return nil, err
	}
	node := &relevance.Node{Op: relevance.Leaf, Label: label, Weight: c.Weight(), Dists: dists,
		Quantiles: li.quant, ChunkStats: li.cstats}
	if key != "" {
		res.setLeafID(node, key)
	}
	res.setNode(c, node)
	return node, nil
}

// subqueryNode implements the nested-query semantics of section 4.4:
// EXISTS and IN score each outer item by the minimum distance over the
// inner relation ("the data item most closely fulfilling the subquery
// condition"); the negated forms are colorable only via boolean
// evaluation (yellow where satisfied, uncolorable otherwise).
func (e *Engine) subqueryNode(sq *query.SubqueryExpr, b *query.Binding, space *itemSpace, res *Result, negated bool, workers int) (*relevance.Node, error) {
	subBinding, ok := b.Subs[sq]
	if !ok {
		return nil, fmt.Errorf("core: subquery not bound")
	}
	compute := func() ([]float64, error) {
		if len(sq.Sub.From) != 1 {
			return nil, fmt.Errorf("core: subqueries over %d tables unsupported", len(sq.Sub.From))
		}
		inner, err := e.cat.Table(sq.Sub.From[0])
		if err != nil {
			return nil, err
		}
		// Combined inner-condition distance per inner row, using a nested
		// evaluation (normalization-free raw means keep the scale of the
		// attribute distance; we use normalized values for robustness).
		innerSpace := &itemSpace{tables: []*dataset.Table{inner}, n: inner.NumRows()}
		innerRes := &Result{Engine: e, nodeOf: make(map[query.Expr]*relevance.Node), preds: make(map[*query.Cond]*predicateData)}
		innerRoot, err := e.buildTree(sq.Sub.Where, subBinding, innerSpace, innerRes, workers)
		if err != nil {
			return nil, err
		}
		innerEval, err := relevance.Evaluate(innerRoot, innerSpace.n, relevance.EvalOptions{
			Budget: e.opt.GridW * e.opt.GridH,
			Mode:   e.opt.Mode,
		})
		if err != nil {
			return nil, err
		}
		innerDist := innerEval.Combined

		mode := sq.Mode
		if negated {
			switch mode {
			case query.Exists:
				mode = query.NotExists
			case query.NotExists:
				mode = query.Exists
			case query.InQuery:
				mode = query.NotInQuery
			case query.NotInQuery:
				mode = query.InQuery
			}
		}
		dists := make([]float64, space.n)
		switch mode {
		case query.Exists:
			// Uncorrelated EXISTS: the same minimum for every outer item.
			best := math.NaN()
			for _, d := range innerDist {
				if math.IsNaN(d) {
					continue
				}
				if math.IsNaN(best) || d < best {
					best = d
				}
			}
			for i := range dists {
				dists[i] = best
			}
		case query.InQuery:
			attr := b.InAttrs[sq]
			innerAttr := subBinding.Selects[0]
			conn := dataset.Connection{
				Name: "in-subquery", Left: attr.Table, Right: innerAttr.Table,
				LeftAttr: attr.Attr, RightAttr: innerAttr.Attr,
				Metric: dataset.MetricNumeric, Mode: dataset.ModeEqual,
			}
			if attr.Kind.IsStringy() {
				conn.Metric = dataset.MetricString
			} else if attr.Kind == dataset.KindTime {
				conn.Metric = dataset.MetricTime
			}
			outer, err := space.tableByName(attr.Table)
			if err != nil {
				return nil, err
			}
			perRow, err := join.MinDistancePerLeft(conn, outer, inner, innerDist, e.reg)
			if err != nil {
				return nil, err
			}
			for i := range dists {
				row, err := space.rowFor(i, attr.Table)
				if err != nil {
					return nil, err
				}
				dists[i] = perRow[row]
			}
		case query.NotExists, query.NotInQuery:
			sat, err := e.boolSubquery(sq, mode, b, subBinding, space, inner, innerDist)
			if err != nil {
				return nil, err
			}
			for i := range dists {
				if sat[i] {
					dists[i] = 0
				} else {
					dists[i] = math.NaN()
				}
			}
		}
		return dists, nil
	}
	// The subquery leaf caches on runKeys.subquery — the full rendered
	// subquery plus the engine options the inner evaluation depends on.
	var dists []float64
	var li leafIndexes
	var err error
	var key string
	if res.cache != nil {
		key = res.keys.subquery(e.opt.GridW*e.opt.GridH, e.opt.Mode, sq.String(), negated)
		dists, li, err = res.cache.leafFetch(key, "", sq.Label(), compute)
	} else {
		dists, err = compute()
	}
	if err != nil {
		return nil, err
	}
	node := &relevance.Node{Op: relevance.Leaf, Label: sq.Label(), Weight: sq.Weight(), Dists: dists,
		Quantiles: li.quant, ChunkStats: li.cstats}
	if key != "" {
		res.setLeafID(node, key)
	}
	res.setNode(sq, node)
	return node, nil
}

// boolSubquery evaluates NOT EXISTS / NOT IN exactly. The inner
// condition counts as satisfied where its combined distance is zero.
func (e *Engine) boolSubquery(sq *query.SubqueryExpr, mode query.SubqueryMode, b, subBinding *query.Binding, space *itemSpace, inner *dataset.Table, innerDist []float64) ([]bool, error) {
	anyInner := false
	for _, d := range innerDist {
		if d == 0 {
			anyInner = true
			break
		}
	}
	sat := make([]bool, space.n)
	switch mode {
	case query.NotExists:
		for i := range sat {
			sat[i] = !anyInner
		}
	case query.NotInQuery:
		attr := b.InAttrs[sq]
		innerAttr := subBinding.Selects[0]
		outer, err := space.tableByName(attr.Table)
		if err != nil {
			return nil, err
		}
		innerCol, err := inner.Column(innerAttr.Attr)
		if err != nil {
			return nil, err
		}
		members := make(map[string]bool)
		for r := 0; r < inner.NumRows(); r++ {
			if innerDist[r] == 0 && !innerCol.IsNull(r) {
				members[innerCol.Value(r).String()] = true
			}
		}
		outerCol, err := outer.Column(attr.Attr)
		if err != nil {
			return nil, err
		}
		for i := range sat {
			row, err := space.rowFor(i, attr.Table)
			if err != nil {
				return nil, err
			}
			if outerCol.IsNull(row) {
				sat[i] = false
				continue
			}
			sat[i] = !members[outerCol.Value(row).String()]
		}
	}
	return sat, nil
}
