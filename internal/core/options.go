// Package core is the VisDB engine — the paper's primary contribution.
// It executes a query not as a boolean filter but as a relevance
// ranking: per-predicate distances (section 3), reduction-first
// normalization, weighted AND/OR combination (section 5.2), α-quantile /
// gap-heuristic display reduction (section 5.1), and pixel-oriented
// window construction with the spiral or 2D arrangements and the VisDB
// colormap (section 4.2). One overall-result window plus one window per
// top-level selection predicate are produced, positionally aligned so
// "for every data item the colors representing the distances for the
// different selection predicates are at the same relative position in
// each of the windows".
package core

import (
	"runtime"

	"repro/internal/colormap"
	"repro/internal/relevance"
)

// ArrangementKind selects how displayed items map to window cells.
type ArrangementKind int

const (
	// ArrangeSpiral is the default rectangular-spiral arrangement of
	// figure 1a.
	ArrangeSpiral ArrangementKind = iota
	// Arrange2D is the signed-distance quadrant arrangement of
	// figure 1b; it requires AxisX and AxisY options naming two
	// predicates' attributes.
	Arrange2D
)

// Options configures an Engine. The zero value is usable: a 128×128 item
// grid per window, 1 pixel per item, the 256-level VisDB colormap,
// weight-normalized combination and automatic display reduction.
type Options struct {
	// GridW and GridH are the per-window item grid dimensions.
	GridW, GridH int
	// PixelsPerItem is 1, 4 or 16 (section 4.2); it scales the pixel
	// block each item occupies when windows are rendered.
	PixelsPerItem int
	// Map is the colormap; nil selects colormap.VisDB(256).
	Map *colormap.Map
	// Mode selects the combination formulas (section 5.2).
	Mode relevance.CombineMode
	// And selects the AND-node combiner: the default weighted
	// arithmetic mean, or the Euclidean/Lp alternatives section 5.2
	// offers for special applications.
	And relevance.ANDCombiner
	// LpP is the exponent for the ANDLp combiner.
	LpP float64
	// NaiveNormalize disables reduction-first normalization (ablation
	// A1).
	NaiveNormalize bool
	// Parallel evaluates sibling query parts concurrently; results are
	// identical, only wall-clock changes.
	Parallel bool
	// MaxPairs caps the materialized cross product of multi-table
	// queries; 0 means 1<<20.
	MaxPairs int
	// Arrangement picks the window arrangement.
	Arrangement ArrangementKind
	// AxisX and AxisY name the attributes whose signed distances drive
	// the 2D arrangement.
	AxisX, AxisY string
	// PercentDisplayed, when > 0, fixes the fraction of items displayed
	// (the user's slider in figure 5); otherwise the section 5.1
	// heuristics decide.
	PercentDisplayed float64
	// DisableGapHeuristic forces the plain α-quantile cut (ablation A3).
	DisableGapHeuristic bool
	// FullSort ranks every item with a full O(n log n) sort instead of
	// selecting only the display budget. The displayed result is
	// identical either way; full sorting keeps Result.Order an exact
	// ranking of all n items, which the A-series ablations and exact
	// quantile statistics rely on. Arrange2D implies FullSort.
	FullSort bool
	// Workers bounds the worker pool used for per-predicate distance
	// computation (chunked across rows and across sibling predicates).
	// 0 or negative selects runtime.GOMAXPROCS(0); 1 forces the serial
	// path. Parallel and serial runs are bit-identical.
	Workers int
	// NoInteriorSketch disables the incremental interior-normalization
	// cache of cached runs (the ablation/benchmark baseline): interior
	// nodes always re-run their fused combine pass and re-select their
	// normalization range, exactly as if no interior entry were cached.
	// Results are bit-identical either way — the sketch only changes
	// where the warm-rerun time goes (see StageTimings.SketchHits).
	NoInteriorSketch bool
	// NoSegmentStats disables the per-segment footer-stats pushdown of
	// cold file-backed scans (the ablation/benchmark baseline): range
	// predicates decode every storage segment even when the catalog
	// footer proves a segment's rows all score distance zero. Results
	// are bit-identical either way — the pushdown only skips decodes
	// whose outcome is already known (see StageTimings.SegsSkipped).
	NoSegmentStats bool
}

// withDefaults returns a copy with zero fields replaced by defaults.
func (o Options) withDefaults() Options {
	if o.GridW <= 0 {
		o.GridW = 128
	}
	if o.GridH <= 0 {
		o.GridH = 128
	}
	switch o.PixelsPerItem {
	case 1, 4, 16:
	default:
		o.PixelsPerItem = 1
	}
	if o.Map == nil {
		o.Map = colormap.VisDB(colormap.DefaultLevels)
	}
	if o.MaxPairs <= 0 {
		o.MaxPairs = 1 << 20
	}
	if o.PercentDisplayed < 0 {
		o.PercentDisplayed = 0
	}
	if o.PercentDisplayed > 1 {
		o.PercentDisplayed = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}
