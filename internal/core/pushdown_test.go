package core

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/query"
)

// clusteredCatalog builds the pushdown test bed: a clustered column t
// (ascending with noise, so segments cover narrow value slices), a
// uniform column u (segments span the whole domain — never skippable),
// and a clustered column with scattered nulls (null segments must not
// skip). Returned in memory; tests write it to disk themselves.
func clusteredCatalog(t *testing.T, rows int) *dataset.Catalog {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	tbl, err := dataset.NewTable("C", dataset.Schema{
		{Name: "t", Kind: dataset.KindFloat},
		{Name: "u", Kind: dataset.KindFloat},
		{Name: "n", Kind: dataset.KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		tv := dataset.Float(float64(r)/float64(rows)*100 + rng.Float64())
		nv := tv
		if r%523 == 7 {
			nv = dataset.Null(dataset.KindFloat)
		}
		if err := tbl.AppendRow(tv, dataset.Float(rng.Float64()*100), nv); err != nil {
			t.Fatal(err)
		}
	}
	cat := dataset.NewCatalog()
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	return cat
}

// samePredicateInfos compares the slider panels — FirstDisplayed and
// LastDisplayed go through predicateData.valueAt, the lazy
// materialization path of skipped segments.
func samePredicateInfos(t *testing.T, step string, a, b *Result) {
	t.Helper()
	ia, ib := a.PredicateInfos(), b.PredicateInfos()
	if len(ia) != len(ib) {
		t.Fatalf("%s: %d vs %d predicate infos", step, len(ia), len(ib))
	}
	eq := func(x, y float64) bool {
		return math.Float64bits(x) == math.Float64bits(y) || (math.IsNaN(x) && math.IsNaN(y))
	}
	for i := range ia {
		x, y := ia[i], ib[i]
		if x.NumResults != y.NumResults || !eq(x.FirstDisplayed, y.FirstDisplayed) ||
			!eq(x.LastDisplayed, y.LastDisplayed) || !eq(x.MinDB, y.MinDB) || !eq(x.MaxDB, y.MaxDB) {
			t.Fatalf("%s: predicate %d infos differ: %+v vs %+v", step, i, x, y)
		}
	}
}

// TestPushdownLockstepReplay is the bit-identity contract of the
// segment-stats pushdown: the same randomized interaction script —
// range slides on the skippable clustered column, weight changes, a
// strict operator, predicates on never-skippable columns — replayed
// against the in-memory catalog, the mmap backend with stats on, the
// mmap backend with stats off (Options.NoSegmentStats) and the ReadAt
// backend, must produce bit-identical results at every step; and the
// stats-on engines must actually have skipped segments along the way.
func TestPushdownLockstepReplay(t *testing.T) {
	const rows = 5*dataset.SegmentSize + 301
	mem := clusteredCatalog(t, rows)
	path := filepath.Join(t.TempDir(), "c.vseg")
	if _, err := dataset.WriteCatalogFile(path, mem); err != nil {
		t.Fatal(err)
	}
	open := func(force bool) *dataset.Catalog {
		// A tiny decode cache forces real cold decodes on every leaf
		// recompute, so the skip path is exercised, not the LRU.
		c, err := dataset.OpenCatalogFile(path, dataset.OpenOptions{CacheBytes: 1 << 16, ForceReadAt: force})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	base := Options{GridW: 16, GridH: 16}
	noStats := base
	noStats.NoSegmentStats = true
	engines := []struct {
		name    string
		eng     *Engine
		statsOn bool
	}{
		{"memory", New(mem, nil, base), false},
		{"mmap stats-on", New(open(false), nil, base), true},
		{"mmap stats-off", New(open(false), nil, noStats), false},
		{"readat stats-on", New(open(true), nil, base), true},
	}
	caches := make([]*RunCache, len(engines))
	for i := range caches {
		caches[i] = NewRunCache()
	}

	// The script mixes cold leaves (fresh ranges), warm replays
	// (repeated ranges), strict bounds, and an always-unskippable
	// predicate; rendered as full queries so every engine replays the
	// identical edit sequence.
	rng := rand.New(rand.NewSource(23))
	var script []string
	for step := 0; step < 12; step++ {
		lo := float64(rng.Intn(40))
		hi := lo + 20 + float64(rng.Intn(40))
		switch step % 4 {
		case 0:
			script = append(script, fmt.Sprintf(`SELECT t FROM C WHERE t BETWEEN %g AND %g`, lo, hi))
		case 1:
			script = append(script, fmt.Sprintf(`SELECT t FROM C WHERE t > %g AND u < 60 WEIGHT 2`, lo))
		case 2:
			script = append(script, fmt.Sprintf(`SELECT t FROM C WHERE t < %g OR n BETWEEN %g AND %g`, hi, lo, hi))
		case 3:
			script = append(script, fmt.Sprintf(`SELECT t FROM C WHERE n > %g AND u BETWEEN 10 AND 90`, lo))
		}
	}
	skippedTotal := make([]int, len(engines))
	for si, sql := range script {
		q, err := query.Parse(sql)
		if err != nil {
			t.Fatalf("step %d: %v", si, err)
		}
		results := make([]*Result, len(engines))
		for ei, e := range engines {
			res, err := e.eng.RunCached(q, caches[ei])
			if err != nil {
				t.Fatalf("step %d (%s): %v", si, e.name, err)
			}
			results[ei] = res
			skippedTotal[ei] += res.Timings.SegsSkipped
			if !e.statsOn && res.Timings.SegsSkipped != 0 {
				t.Fatalf("step %d (%s): skipped %d segments with pushdown unavailable",
					si, e.name, res.Timings.SegsSkipped)
			}
		}
		for ei := 1; ei < len(engines); ei++ {
			sameResults(t, results[0], results[ei])
			samePredicateInfos(t, sql, results[0], results[ei])
			cond0, okc := query.Predicates(results[0].Query.Where)[0].(*query.Cond)
			condI, okcI := query.Predicates(results[ei].Query.Where)[0].(*query.Cond)
			if !okc || !okcI {
				continue
			}
			if f0, l0, ok0 := results[0].FirstLastOfColor(cond0, 0, 2); ok0 {
				fi, li, oki := results[ei].FirstLastOfColor(condI, 0, 2)
				if !oki || math.Float64bits(f0) != math.Float64bits(fi) || math.Float64bits(l0) != math.Float64bits(li) {
					t.Fatalf("step %d (%s): FirstLastOfColor (%v,%v,%v) vs (%v,%v,true)",
						si, engines[ei].name, fi, li, oki, f0, l0)
				}
			}
		}
	}
	for ei, e := range engines {
		if e.statsOn && skippedTotal[ei] == 0 {
			t.Fatalf("%s: the script never skipped a segment — pushdown inactive", e.name)
		}
	}
}
