package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/dataset"
	"repro/internal/query"
)

// TestEngineMatchesBaselineOnRandomQueries cross-validates the engine
// against the independent boolean evaluator: for randomly generated
// tables and queries, the engine's exact answers (combined distance 0)
// must be precisely the rows the boolean evaluator returns. This pins
// the semantics of the distance-0 contract across operators, boolean
// structure and weights.
func TestEngineMatchesBaselineOnRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 60; trial++ {
		n := 10 + rng.Intn(60)
		tbl, err := dataset.NewTable("R", dataset.Schema{
			{Name: "a", Kind: dataset.KindFloat},
			{Name: "b", Kind: dataset.KindFloat},
			{Name: "c", Kind: dataset.KindFloat},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			vals := make([]dataset.Value, 3)
			for j := range vals {
				if rng.Float64() < 0.05 {
					vals[j] = dataset.Null(dataset.KindFloat)
				} else {
					// Integer-valued floats make boundary collisions
					// (the strict-operator edge case) frequent.
					vals[j] = dataset.Float(float64(rng.Intn(20)))
				}
			}
			if err := tbl.AppendRow(vals...); err != nil {
				t.Fatal(err)
			}
		}
		cat := dataset.NewCatalog()
		if err := cat.AddTable(tbl); err != nil {
			t.Fatal(err)
		}
		sql := randomQuery(rng)
		engine := New(cat, nil, Options{GridW: 16, GridH: 16})
		res, err := engine.RunSQL(sql)
		if err != nil {
			t.Fatalf("engine %q: %v", sql, err)
		}
		want, err := baseline.MatchesSQL(cat, sql)
		if err != nil {
			t.Fatalf("baseline %q: %v", sql, err)
		}
		got := map[int]bool{}
		for i, d := range res.Combined() {
			if d == 0 {
				got[i] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("query %q: engine %d exact, baseline %d rows\nengine: %v\nbaseline: %v",
				sql, len(got), len(want), keys(got), want)
		}
		for _, row := range want {
			if !got[row] {
				t.Fatalf("query %q: baseline row %d missing from engine exact set", sql, row)
			}
		}
	}
}

func keys(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

// randomQuery builds a random 1-3 predicate query over columns a, b, c
// with integer thresholds, joined by random AND/OR nesting.
func randomQuery(rng *rand.Rand) string {
	cols := []string{"a", "b", "c"}
	ops := []string{">", ">=", "<", "<=", "="}
	pred := func() string {
		col := cols[rng.Intn(len(cols))]
		switch rng.Intn(4) {
		case 0:
			lo := rng.Intn(15)
			return fmt.Sprintf("%s BETWEEN %d AND %d", col, lo, lo+rng.Intn(6))
		case 1:
			return fmt.Sprintf("%s IN (%d, %d, %d)", col, rng.Intn(20), rng.Intn(20), rng.Intn(20))
		default:
			return fmt.Sprintf("%s %s %d", col, ops[rng.Intn(len(ops))], rng.Intn(20))
		}
	}
	var where string
	switch rng.Intn(4) {
	case 0:
		where = pred()
	case 1:
		where = pred() + " AND " + pred()
	case 2:
		where = pred() + " OR " + pred()
	default:
		where = "(" + pred() + " OR " + pred() + ") AND " + pred()
	}
	// Random weights exercise the weighted combination without changing
	// boolean semantics.
	if rng.Intn(2) == 0 {
		where += fmt.Sprintf(" WEIGHT %d", 1+rng.Intn(3))
	}
	return "SELECT a FROM R WHERE " + where
}

// TestEngineMatchesBaselineWithNot covers the negation paths: inverted
// comparison operators keep exact boolean agreement; non-invertible
// negations agree on the satisfied set.
func TestEngineMatchesBaselineWithNot(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tbl, _ := dataset.NewTable("R", dataset.Schema{
		{Name: "a", Kind: dataset.KindFloat},
	})
	for i := 0; i < 40; i++ {
		_ = tbl.AppendRow(dataset.Float(float64(rng.Intn(10))))
	}
	cat := dataset.NewCatalog()
	_ = cat.AddTable(tbl)
	engine := New(cat, nil, Options{GridW: 8, GridH: 8})
	for _, sql := range []string{
		`SELECT a FROM R WHERE NOT (a > 5)`,
		`SELECT a FROM R WHERE NOT (a <= 3)`,
		`SELECT a FROM R WHERE NOT (a = 4)`,
		`SELECT a FROM R WHERE NOT (a BETWEEN 2 AND 6)`,
		`SELECT a FROM R WHERE NOT (a > 2 AND a < 7)`,
		`SELECT a FROM R WHERE NOT (a < 2 OR a > 7)`,
	} {
		res, err := engine.RunSQL(sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		want, err := baseline.MatchesSQL(cat, sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		exact := 0
		for _, d := range res.Combined() {
			if d == 0 {
				exact++
			}
		}
		if exact != len(want) {
			t.Errorf("%q: engine %d exact vs baseline %d", sql, exact, len(want))
		}
	}
	_ = query.OpEq
}
