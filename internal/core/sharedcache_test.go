package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/query"
)

// fillDists stores an n-float leaf vector under key via the
// singleflight path (compute always runs: the key is absent).
func fillDists(t *testing.T, sc *SharedCache, key string, n int, fill float64) {
	t.Helper()
	_, hit, err := sc.fetch(key, false, func() (*sharedEntry, error) {
		dists := make([]float64, n)
		for i := range dists {
			dists[i] = fill
		}
		return &sharedEntry{dists: dists, label: key}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatalf("fill of %q was a hit", key)
	}
}

// touch performs a lookup that must hit.
func touch(t *testing.T, sc *SharedCache, key string) {
	t.Helper()
	_, hit, err := sc.fetch(key, false, func() (*sharedEntry, error) {
		return nil, fmt.Errorf("touch of %q missed", key)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatalf("touch of %q missed", key)
	}
}

func residentKeys(sc *SharedCache) []string {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	keys := make([]string, 0, len(sc.entries))
	for k := range sc.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestSharedCacheEviction: table-driven LRU + byte-budget eviction
// ordering. Each op either fills a key with an n-float vector or
// touches an existing key (refreshing its recency).
func TestSharedCacheEviction(t *testing.T) {
	type op struct {
		fill string
		n    int
		get  string
	}
	cases := []struct {
		name       string
		maxEntries int
		maxBytes   int64
		ops        []op
		want       []string
		wantBytes  int64
	}{
		{
			name:       "entry cap evicts oldest",
			maxEntries: 2, maxBytes: 1 << 20,
			ops:       []op{{fill: "a", n: 4}, {fill: "b", n: 4}, {fill: "c", n: 4}},
			want:      []string{"b", "c"},
			wantBytes: 2 * 4 * 8,
		},
		{
			name:       "access refreshes recency",
			maxEntries: 2, maxBytes: 1 << 20,
			ops:       []op{{fill: "a", n: 4}, {fill: "b", n: 4}, {get: "a"}, {fill: "c", n: 4}},
			want:      []string{"a", "c"},
			wantBytes: 2 * 4 * 8,
		},
		{
			name:       "byte budget evicts until under",
			maxEntries: 64, maxBytes: 100 * 8,
			ops:       []op{{fill: "a", n: 40}, {fill: "b", n: 40}, {fill: "c", n: 40}},
			want:      []string{"b", "c"},
			wantBytes: 80 * 8,
		},
		{
			name:       "byte budget respects recency",
			maxEntries: 64, maxBytes: 100 * 8,
			ops:       []op{{fill: "a", n: 40}, {fill: "b", n: 40}, {get: "a"}, {fill: "c", n: 40}},
			want:      []string{"a", "c"},
			wantBytes: 80 * 8,
		},
		{
			name:       "oversized entry cannot stay resident",
			maxEntries: 64, maxBytes: 100 * 8,
			ops:       []op{{fill: "big", n: 200}},
			want:      []string{},
			wantBytes: 0,
		},
		{
			name:       "mixed sizes drop two small for one large",
			maxEntries: 64, maxBytes: 100 * 8,
			ops:       []op{{fill: "a", n: 30}, {fill: "b", n: 30}, {fill: "c", n: 90}},
			want:      []string{"c"},
			wantBytes: 90 * 8,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := NewSharedCache(tc.maxEntries, tc.maxBytes)
			for _, o := range tc.ops {
				if o.get != "" {
					touch(t, sc, o.get)
				} else {
					fillDists(t, sc, o.fill, o.n, 1)
				}
			}
			got := residentKeys(sc)
			if len(got) != len(tc.want) {
				t.Fatalf("resident %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("resident %v, want %v", got, tc.want)
				}
			}
			if b := sc.Bytes(); b != tc.wantBytes {
				t.Fatalf("bytes %d, want %d", b, tc.wantBytes)
			}
		})
	}
}

// TestSharedCacheCopyOnInvalidate: invalidation (and eviction) only
// unlink entries — a session still holding the vector keeps reading
// valid, unchanged data, and the next fill allocates a fresh vector
// instead of reusing the old backing array.
func TestSharedCacheCopyOnInvalidate(t *testing.T) {
	sc := NewSharedCache(0, 0)
	cond := &query.Cond{Attr: "x", Op: query.OpGt, Value: dataset.Float(5)}
	key := "C|T:T:4|T.x|" + cond.Label()
	old, _, err := sc.fetch(key, false, func() (*sharedEntry, error) {
		return &sharedEntry{
			pd:    &predicateData{Raw: []float64{1, 2, 3, 4}},
			attr:  cond.Attr,
			label: cond.Label(),
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]float64(nil), old.pd.Raw...)

	sc.InvalidateCond(cond)
	if sc.Len() != 0 || sc.Bytes() != 0 {
		t.Fatalf("invalidate left %d entries, %d bytes", sc.Len(), sc.Bytes())
	}

	fresh, hit, err := sc.fetch(key, false, func() (*sharedEntry, error) {
		return &sharedEntry{
			pd:    &predicateData{Raw: []float64{9, 9, 9, 9}},
			attr:  cond.Attr,
			label: cond.Label(),
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("post-invalidation fetch hit a dead entry")
	}
	if &fresh.pd.Raw[0] == &old.pd.Raw[0] {
		t.Fatal("refill reused the invalidated backing array")
	}
	for i, v := range old.pd.Raw {
		if v != snapshot[i] {
			t.Fatalf("old reader's vector changed at %d: %v -> %v", i, snapshot[i], v)
		}
	}

	// Invalidation is structural: a different range on the same
	// attribute stays resident.
	other := &query.Cond{Attr: "x", Op: query.OpGt, Value: dataset.Float(7)}
	fillDists(t, sc, "C|T:T:4|T.x|"+other.Label(), 4, 0)
	sc.InvalidateCond(cond)
	if sc.Len() != 1 {
		t.Fatalf("structural invalidation dropped a sibling range: %d entries", sc.Len())
	}
}

// TestSharedCacheSingleflight: N concurrent sessions missing on the
// same key run the computation exactly once; everyone else waits for
// the leader's fill and counts as a hit.
func TestSharedCacheSingleflight(t *testing.T) {
	const waiters = 7
	sc := NewSharedCache(0, 0)
	var computes atomic.Int64
	var wg sync.WaitGroup
	results := make([][]float64, waiters+1)
	for g := 0; g <= waiters; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := sc.fetch("K", false, func() (*sharedEntry, error) {
				computes.Add(1)
				// Hold the fill open until every other goroutine is
				// blocked on it, so the schedule cannot degenerate into
				// sequential hits.
				deadline := time.Now().Add(5 * time.Second)
				for sc.Stats().Waits < waiters {
					if time.Now().After(deadline) {
						return nil, fmt.Errorf("waiters never arrived")
					}
					time.Sleep(time.Millisecond)
				}
				return &sharedEntry{dists: []float64{42}}, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = v.dists
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
	st := sc.Stats()
	if st.Waits != waiters || st.Misses != 1 || st.Hits != waiters || st.Fills != 1 {
		t.Fatalf("stats %+v", st)
	}
	for g := 1; g <= waiters; g++ {
		if &results[g][0] != &results[0][0] {
			t.Fatal("waiter received a different vector than the leader")
		}
	}
}

// TestSharedCacheSignedUpgrade: an entry computed without signed
// distances cannot serve a 2D-arrangement lookup; the upgrading fill
// replaces it (byte accounting included) while old readers keep the
// unsigned vector.
func TestSharedCacheSignedUpgrade(t *testing.T) {
	sc := NewSharedCache(0, 0)
	unsigned, _, err := sc.fetch("K", false, func() (*sharedEntry, error) {
		return &sharedEntry{pd: &predicateData{Raw: []float64{1, 2}}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	v, hit, err := sc.fetch("K", true, func() (*sharedEntry, error) {
		return &sharedEntry{pd: &predicateData{Raw: []float64{1, 2}, Signed: []float64{-1, 2}}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("needSigned lookup hit an unsigned entry")
	}
	if v.pd.Signed == nil {
		t.Fatal("upgrade did not produce signed distances")
	}
	if sc.Len() != 1 {
		t.Fatalf("upgrade left %d entries", sc.Len())
	}
	if want := int64(8 * 4); sc.Bytes() != want {
		t.Fatalf("bytes %d, want %d", sc.Bytes(), want)
	}
	if unsigned.pd.Signed != nil {
		t.Fatal("old reader's entry was mutated in place")
	}
	// And the signed entry serves both kinds of lookup now.
	touch(t, sc, "K")
}

// TestSharedTierAcrossRunCaches is the end-to-end two-tier flow: two
// private caches (two sessions) on one engine and one shared tier. The
// second session's first run recomputes nothing — every leaf comes
// from the shared tier — and its result is bit-identical to a cold
// run.
func TestSharedTierAcrossRunCaches(t *testing.T) {
	for _, sql := range []string{
		`SELECT x FROM T WHERE x > 6 AND y < 5`,
		`SELECT x FROM T WHERE NOT (x < 4) AND name = 'beta'`,
		`SELECT x FROM T WHERE NOT (name = 'beta') OR x IN (1, 3, 5)`,
		`SELECT x FROM T WHERE NOT (x BETWEEN 2 AND 5) AND y < 5`,
	} {
		e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
		q, err := query.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := e.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		sc := NewSharedCache(0, 0)
		c1 := NewRunCache()
		c1.AttachShared(sc)
		first, err := e.RunCached(q, c1)
		if err != nil {
			t.Fatal(err)
		}
		if first.Timings.SharedHits != 0 || first.Timings.CacheHits != 0 {
			t.Fatalf("%s: first session warm-start: %+v", sql, first.Timings)
		}
		sameResults(t, cold, first)

		c2 := NewRunCache()
		c2.AttachShared(sc)
		q2, err := query.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		second, err := e.RunCached(q2, c2)
		if err != nil {
			t.Fatal(err)
		}
		if second.Timings.CacheMisses != 0 {
			t.Fatalf("%s: second session recomputed %d leaves", sql, second.Timings.CacheMisses)
		}
		if second.Timings.SharedHits == 0 || second.Timings.SharedHits != second.Timings.CacheHits {
			t.Fatalf("%s: second session hits=%d sharedHits=%d", sql, second.Timings.CacheHits, second.Timings.SharedHits)
		}
		sameResults(t, cold, second)

		// A rerun in the second session is served privately, not from
		// the shared tier.
		third, err := e.RunCached(q2, c2)
		if err != nil {
			t.Fatal(err)
		}
		if third.Timings.SharedHits != 0 || third.Timings.CacheMisses != 0 {
			t.Fatalf("%s: private rerun: %+v", sql, third.Timings)
		}
		sameResults(t, cold, third)
	}
}

// TestSharedTierPromotesQuantiles: the quantile index built by one
// session's rerun lands in the shared tier (byte accounting grows) and
// later sessions reuse it instead of re-sorting.
func TestSharedTierPromotesQuantiles(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	q, err := query.Parse(`SELECT x FROM T WHERE x > 6 AND y < 5`)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewSharedCache(0, 0)
	c1 := NewRunCache()
	c1.AttachShared(sc)
	if _, err := e.RunCached(q, c1); err != nil {
		t.Fatal(err)
	}
	afterFill := sc.Bytes()
	// The second run hits privately and builds (then promotes) the
	// quantile indexes.
	if _, err := e.RunCached(q, c1); err != nil {
		t.Fatal(err)
	}
	if sc.Bytes() <= afterFill {
		t.Fatalf("quantile promotion did not grow the shared tier: %d -> %d bytes", afterFill, sc.Bytes())
	}
	sc.mu.Lock()
	withQuant := 0
	for _, ent := range sc.entries {
		if ent.quant != nil {
			withQuant++
		}
	}
	sc.mu.Unlock()
	if withQuant == 0 {
		t.Fatal("no shared entry carries a promoted quantile index")
	}
}

// TestInvalidateNegatedCondition: entries computed for a negated
// invertible condition (stored under the inverted operator's key) must
// still be invalidated by the condition AS WRITTEN — that is what a
// slider drag hands to InvalidateCond. A drag storm over a
// NOT-condition must not pile one dead entry per intermediate position
// into either tier.
func TestInvalidateNegatedCondition(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	q, err := query.Parse(`SELECT x FROM T WHERE NOT (x > 6) AND y < 5`)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewSharedCache(0, 0)
	cache := NewRunCache()
	cache.AttachShared(sc)
	if _, err := e.RunCached(q, cache); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 2 || sc.Len() != 2 {
		t.Fatalf("baseline entries: private %d, shared %d", cache.Len(), sc.Len())
	}
	// Drag x's threshold through several positions the way the session
	// does: invalidate the current form, mutate, rerun.
	inner := q.Where.(*query.BoolExpr).Children[0].(*query.Not).Child.(*query.Cond)
	for i := 0; i < 5; i++ {
		cache.InvalidateCond(inner)
		inner.Value = dataset.Float(float64(7 + i))
		if _, err := e.RunCached(q, cache); err != nil {
			t.Fatal(err)
		}
		if cache.Len() != 2 || sc.Len() != 2 {
			t.Fatalf("drag %d piled entries: private %d, shared %d", i, cache.Len(), sc.Len())
		}
	}
}

// TestRunPreboundValidation: a binding must match the query AST and
// the engine's catalog.
func TestRunPreboundValidation(t *testing.T) {
	cat := smallCatalog(t)
	e := New(cat, nil, Options{GridW: 8, GridH: 8})
	q, err := query.Parse(`SELECT x FROM T WHERE x > 6`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := query.Bind(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunPrebound(q, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, cold, res)

	if _, err := e.RunPrebound(q, nil, nil); err == nil {
		t.Fatal("nil binding accepted")
	}
	q2, _ := query.Parse(`SELECT x FROM T WHERE x > 6`)
	if _, err := e.RunPrebound(q2, b, nil); err == nil {
		t.Fatal("binding for a different AST accepted")
	}
	other := New(smallCatalog(t), nil, Options{})
	if _, err := other.RunPrebound(q, b, nil); err == nil {
		t.Fatal("binding for a different catalog accepted")
	}
}

// TestSharedCacheAdmission: the cost-aware admission policy. Each op
// fills a key with a compute of controlled cost; the table asserts
// which fills become resident, which are rejected, and that rejected
// fills still serve a valid vector to the caller.
func TestSharedCacheAdmission(t *testing.T) {
	type op struct {
		key  string
		cost time.Duration // how long the compute sleeps
	}
	cases := []struct {
		name        string
		opts        SharedOptions
		ops         []op
		want        []string
		wantRejects uint64
	}{
		{
			name: "negative threshold admits everything",
			opts: SharedOptions{AdmitMinCost: -1},
			ops:  []op{{key: "cheap"}, {key: "cheap2"}},
			want: []string{"cheap", "cheap2"},
		},
		{
			name:        "cheap leaves stay out",
			opts:        SharedOptions{AdmitMinCost: time.Hour},
			ops:         []op{{key: "cheap"}, {key: "cheap2"}},
			want:        []string{},
			wantRejects: 2,
		},
		{
			name: "expensive leaves are admitted",
			opts: SharedOptions{AdmitMinCost: time.Microsecond},
			ops:  []op{{key: "slow", cost: 2 * time.Millisecond}},
			want: []string{"slow"},
		},
		{
			// The threshold sits far above an instant compute (even with
			// a scheduler stall) and far below the slow fill's sleep, so
			// the case cannot flake on a loaded machine.
			name:        "mixed traffic keeps only the expensive leaf",
			opts:        SharedOptions{AdmitMinCost: 50 * time.Millisecond},
			ops:         []op{{key: "cheap"}, {key: "slow", cost: 150 * time.Millisecond}, {key: "cheap2"}},
			want:        []string{"slow"},
			wantRejects: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := NewSharedCacheOpts(tc.opts)
			for _, o := range tc.ops {
				o := o
				v, hit, err := sc.fetch(o.key, false, func() (*sharedEntry, error) {
					if o.cost > 0 {
						time.Sleep(o.cost)
					}
					return &sharedEntry{dists: []float64{1, 2, 3}, label: o.key}, nil
				})
				if err != nil {
					t.Fatal(err)
				}
				if hit {
					t.Fatalf("fill of %q was a hit", o.key)
				}
				// Rejected or admitted, the computed vector is served.
				if len(v.dists) != 3 {
					t.Fatalf("fill of %q returned %d dists", o.key, len(v.dists))
				}
			}
			got := residentKeys(sc)
			if len(got) != len(tc.want) {
				t.Fatalf("resident %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("resident %v, want %v", got, tc.want)
				}
			}
			if st := sc.Stats(); st.Rejects != tc.wantRejects {
				t.Fatalf("rejects %d, want %d", st.Rejects, tc.wantRejects)
			}
		})
	}
}

// TestSharedCacheAdmissionDefaults: the zero SharedOptions selects
// cost-aware admission at DefaultAdmitMinCost, while the legacy
// NewSharedCache constructor keeps admitting everything.
func TestSharedCacheAdmissionDefaults(t *testing.T) {
	if sc := NewSharedCacheOpts(SharedOptions{}); sc.admitMin != DefaultAdmitMinCost {
		t.Fatalf("zero SharedOptions admitMin = %v, want %v", sc.admitMin, DefaultAdmitMinCost)
	}
	if sc := NewSharedCache(0, 0); sc.admitMin != 0 {
		t.Fatalf("NewSharedCache admitMin = %v, want 0 (admit all)", sc.admitMin)
	}
	// An instant fill under the default threshold is served but not
	// stored. The assertion only runs when the whole fill round trip
	// measurably stayed under the threshold — on a machine loaded
	// enough to stall an instant compute past 1ms, residency is
	// legitimately allowed and the check would flake.
	sc := NewSharedCacheOpts(SharedOptions{})
	t0 := time.Now()
	fillDists(t, sc, "instant", 4, 1)
	if time.Since(t0) >= DefaultAdmitMinCost {
		t.Skip("machine too loaded to observe an instant fill")
	}
	if sc.Len() != 0 {
		t.Fatalf("instant fill became resident (%d entries)", sc.Len())
	}
	if st := sc.Stats(); st.Rejects != 1 || st.Fills != 0 {
		t.Fatalf("rejects=%d fills=%d, want 1/0", st.Rejects, st.Fills)
	}
}

// TestSharedCacheAdmissionUpgradeReplaces: a fill that replaces an
// existing entry (the needSigned upgrade path) is admitted regardless
// of its cost — dropping the entry instead would turn later 2D lookups
// into permanent misses.
func TestSharedCacheAdmissionUpgradeReplaces(t *testing.T) {
	sc := NewSharedCacheOpts(SharedOptions{AdmitMinCost: time.Millisecond})
	key := "C|T:T:3|T.x|x > 5"
	// Seed an unsigned condition entry (expensive enough to be
	// admitted).
	if _, _, err := sc.fetch(key, false, func() (*sharedEntry, error) {
		time.Sleep(2 * time.Millisecond)
		return &sharedEntry{pd: &predicateData{Raw: []float64{1, 2, 3}}, attr: "x", label: "x > 5"}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if sc.Len() != 1 {
		t.Fatalf("seed entry not resident")
	}
	// A needSigned lookup misses it and upgrades with a cheap compute;
	// the replacement must still be stored.
	v, hit, err := sc.fetch(key, true, func() (*sharedEntry, error) {
		return &sharedEntry{pd: &predicateData{Raw: []float64{1, 2, 3}, Signed: []float64{-1, 0, 1}},
			attr: "x", label: "x > 5"}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("needSigned lookup hit the unsigned entry")
	}
	if v.pd == nil || v.pd.Signed == nil {
		t.Fatal("upgrade did not return signed distances")
	}
	if sc.Len() != 1 {
		t.Fatalf("upgrade not resident: %d entries", sc.Len())
	}
	if _, hit, err := sc.fetch(key, true, func() (*sharedEntry, error) {
		return nil, fmt.Errorf("upgraded entry missed")
	}); err != nil || !hit {
		t.Fatalf("post-upgrade lookup: hit=%v err=%v", hit, err)
	}
}
