package core

import (
	"math"
	"testing"

	"repro/internal/arrange"
	"repro/internal/colormap"
	"repro/internal/query"
	"repro/internal/relevance"
)

func TestEngineAccessors(t *testing.T) {
	cat := smallCatalog(t)
	e := New(cat, nil, Options{GridW: 8, GridH: 8})
	if e.Catalog() != cat {
		t.Error("Catalog accessor")
	}
	if e.Registry() == nil {
		t.Error("Registry accessor")
	}
	if e.Options().GridW != 8 {
		t.Error("Options accessor")
	}
}

func TestBooleanNegationOnStringOps(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	// String comparisons under NOT exercise the boolean-evaluation path
	// for every operator (ordered string ops are not invertible for
	// ordinal matrices only; plain strings invert, so force boolean
	// evaluation with IN/BETWEEN forms too).
	cases := []struct {
		sql  string
		want int // exact results
	}{
		// NOT (name BETWEEN 'b' AND 'e') → boolean path: only beta and
		// delta fall lexicographically inside ('epsilon' > 'e').
		{`SELECT x FROM T WHERE NOT (name BETWEEN 'b' AND 'e')`, 8},
		// NOT (name IN (...)) → boolean path.
		{`SELECT x FROM T WHERE NOT (name IN ('alpha', 'beta'))`, 8},
		// NOT (level = 'mid') on an ordinal column.
		{`SELECT x FROM T WHERE NOT (level = 'mid')`, 7},
	}
	for _, tc := range cases {
		res, err := e.RunSQL(tc.sql)
		if err != nil {
			t.Fatalf("%s: %v", tc.sql, err)
		}
		if got := res.Stats().NumResults; got != tc.want {
			t.Errorf("%s: %d results, want %d", tc.sql, got, tc.want)
		}
	}
}

func TestResultAccessors(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT x FROM T WHERE x > 6`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Root() == nil {
		t.Error("Root")
	}
	// Single-table results have no pairs.
	if _, _, ok := res.Pair(0); ok {
		t.Error("Pair on single-table should report !ok")
	}
	if res.CellOfRank(-1) != arrange.Unplaced || res.CellOfRank(1<<30) != arrange.Unplaced {
		t.Error("CellOfRank bounds")
	}
	if res.CellOfRank(0) == arrange.Unplaced {
		t.Error("rank 0 should be placed")
	}
	cond := res.Query.Where.(*query.Cond)
	norm, err := res.NormOf(cond, 7)
	if err != nil || norm != 0 {
		t.Errorf("NormOf exact item: %v %v", norm, err)
	}
	if _, err := res.NormOf(cond, -1); err == nil {
		t.Error("NormOf out of range")
	}
	if _, err := res.NormOf(&query.Cond{Attr: "zz"}, 0); err == nil {
		t.Error("NormOf unknown expr")
	}
	if res.ColorFor(0) != e.opt.Map.At(0) {
		t.Error("ColorFor exact")
	}
	if res.ColorFor(math.NaN()) != colormap.UncolorableColor {
		t.Error("ColorFor NaN")
	}
	if res.ColorFor(relevance.Scale) != e.opt.Map.At(e.opt.Map.Levels()-1) {
		t.Error("ColorFor far end")
	}
}

func TestPairOnCrossProduct(t *testing.T) {
	e := New(envCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT Temperature FROM Weather, Air-Pollution WHERE CONNECT with-time-diff(30)`)
	if err != nil {
		t.Fatal(err)
	}
	l, r, ok := res.Pair(0)
	if !ok || l != 0 || r != 0 {
		t.Fatalf("Pair(0): %d %d %v", l, r, ok)
	}
	if _, _, ok := res.Pair(res.N); ok {
		t.Error("out-of-range pair")
	}
}

func TestDrillDownLeaf(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	res, err := e.RunSQL(`SELECT x FROM T WHERE x > 6 AND y > 2`)
	if err != nil {
		t.Fatal(err)
	}
	leaf := res.Query.Where.(*query.BoolExpr).Children[0]
	ws, err := res.DrillDownWindows(leaf, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 1 {
		t.Fatalf("leaf drill-down windows: %d", len(ws))
	}
	indep, err := res.DrillDownWindows(leaf, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(indep) != 1 {
		t.Fatalf("independent leaf drill-down: %d", len(indep))
	}
	if _, err := res.DrillDownWindows(&query.Cond{Attr: "zz"}, false); err == nil {
		t.Error("unknown expression should error")
	}
}

func TestDrillDownIndependentReordersByPart(t *testing.T) {
	e := New(smallCatalog(t), nil, Options{GridW: 8, GridH: 8})
	// Overall ranking is dominated by x>6 (weight 5); drilling into
	// y>6 independently must place y-exact items at the center.
	res, err := e.RunSQL(`SELECT x FROM T WHERE x > 6 WEIGHT 5 AND y > 6 WEIGHT 0.2`)
	if err != nil {
		t.Fatal(err)
	}
	yPred := res.Query.Where.(*query.BoolExpr).Children[1]
	ws, err := res.DrillDownWindows(yPred, true)
	if err != nil {
		t.Fatal(err)
	}
	center := arrange.Center(8, 8)
	c, ok := ws[0].CellAt(center)
	if !ok {
		t.Fatal("center cell not set")
	}
	if c != e.opt.Map.At(0) {
		t.Fatalf("independent arrangement should center the part's exact answers, got %+v", c)
	}
}
