package core

import (
	"fmt"

	"repro/internal/relevance"
)

// runKeys is the single point where structural cache keys are built.
// Both cache tiers (the private RunCache and the catalog-level
// SharedCache) key by these strings, so the formats live in one place
// and the tiers can never drift apart. Every key embeds the item-space
// fingerprint — table identities, row counts and the catalog's segment
// epoch (spaceSig) — so caches shared across catalog reloads or
// regenerated segment files can never serve vectors computed over
// different data.
type runKeys struct {
	// space is the item-space fingerprint of the run (spaceSig).
	space string
}

// cond keys a simple-condition leaf: bound table.attr plus the
// condition label (operator, literals, distance function — Label
// excludes the weighting factor by construction, so weight-only reruns
// hit unconditionally).
func (k runKeys) cond(qualified, label string) string {
	return "C|" + k.space + "|" + qualified + "|" + label
}

// join keys a join-connection leaf; negation is part of the identity
// (the negated vector differs, while the label does not).
func (k runKeys) join(label string, negated bool) string {
	return fmt.Sprintf("J|%s|%s|neg=%v", k.space, label, negated)
}

// boolean keys an exact-boolean fallback leaf (the label already
// carries the NOT prefix when negated).
func (k runKeys) boolean(label string) string {
	return "B|" + k.space + "|" + label
}

// subquery keys a subquery leaf on the full rendered subquery (String
// keeps inner weighting factors, which DO change the inner combined
// distances and hence this leaf's vector) plus the engine options the
// inner evaluation depends on (budget and combine mode), so a cache
// shared across differently-configured engines never serves a stale
// vector.
func (k runKeys) subquery(budget int, mode relevance.CombineMode, rendered string, negated bool) string {
	return fmt.Sprintf("S|%s|%d|%d|%s|neg=%v", k.space, budget, mode, rendered, negated)
}

// interior keys an interior node's cached raw combined vector. sig is
// the evaluator's structural signature (fusedCtx.sig) whose leaves are
// identified by their full leaf cache keys (EvalOptions.LeafID), so the
// key transitively pins the item space, the segment epoch, every leaf's
// literals and distance function, the subtree shape, the child weights
// and the kernel options.
func (k runKeys) interior(sig string) string {
	return "I|" + sig
}
