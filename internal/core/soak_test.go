package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// TestSoakLargePipeline pushes half a million rows through the full
// pipeline and checks the global invariants. Skipped in -short mode.
func TestSoakLargePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test in -short mode")
	}
	const n = 500000
	rng := rand.New(rand.NewSource(500))
	tbl, err := dataset.NewTable("Big", dataset.Schema{
		{Name: "a", Kind: dataset.KindFloat},
		{Name: "b", Kind: dataset.KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		va := dataset.Float(rng.NormFloat64() * 100)
		if i%1000 == 0 {
			va = dataset.Null(dataset.KindFloat)
		}
		if err := tbl.AppendRow(va, dataset.Float(rng.Float64()*1000)); err != nil {
			t.Fatal(err)
		}
	}
	cat := dataset.NewCatalog()
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	e := New(cat, nil, Options{GridW: 256, GridH: 256, Parallel: true})
	res, err := e.RunSQL(`SELECT a FROM Big WHERE a > 150 OR b < 10 AND a BETWEEN -50 AND 50`)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != n {
		t.Fatalf("N = %d", res.N)
	}
	// Invariants: monotone ranking, displayed ≤ capacity, displayed
	// items colorable, all values in range.
	if res.Displayed > 256*256 {
		t.Fatalf("displayed %d exceeds capacity", res.Displayed)
	}
	prev := math.Inf(-1)
	for rank := 0; rank < res.Displayed; rank++ {
		d := res.Combined()[res.Order[rank]]
		if math.IsNaN(d) {
			t.Fatalf("uncolorable item displayed at rank %d", rank)
		}
		if d < prev {
			t.Fatalf("ranking not monotone at rank %d", rank)
		}
		prev = d
	}
	for _, d := range res.Combined() {
		if !math.IsNaN(d) && (d < 0 || d > 255) {
			t.Fatalf("combined out of range: %v", d)
		}
	}
	st := res.Stats()
	if st.NumResults < 0 || st.NumResults > n {
		t.Fatalf("stats: %+v", st)
	}
	if _, err := res.Image(2); err != nil {
		t.Fatal(err)
	}
}
