package session

import (
	"math"
	"strings"
	"testing"
)

func TestUndoRevertsSliderMove(t *testing.T) {
	s := newSession(t)
	if s.CanUndo() {
		t.Fatal("fresh session should have no history")
	}
	before := s.Query().String()
	c, _ := s.FindCond("x")
	if err := s.SetRange(c, 0, 5); err != nil {
		t.Fatal(err)
	}
	if !s.CanUndo() {
		t.Fatal("modification should be undoable")
	}
	changed := s.Query().String()
	if changed == before {
		t.Fatal("query should have changed")
	}
	if err := s.Undo(); err != nil {
		t.Fatal(err)
	}
	if got := s.Query().String(); got != before {
		t.Fatalf("undo mismatch:\n  %s\n  %s", got, before)
	}
	if s.CanUndo() {
		t.Fatal("history should be empty again")
	}
	if err := s.Undo(); err == nil {
		t.Fatal("undo on empty history should fail")
	}
}

func TestUndoChain(t *testing.T) {
	s := newSession(t)
	states := []string{s.Query().String()}
	c, _ := s.FindCond("x")
	for _, lo := range []float64{1, 2, 3} {
		if err := s.SetRange(c, lo, math.Inf(1)); err != nil {
			t.Fatal(err)
		}
		states = append(states, s.Query().String())
		// Re-find after each change is unnecessary (same AST), but keep
		// the pointer fresh for clarity.
		c, _ = s.FindCond("x")
	}
	// Unwind the chain.
	for i := len(states) - 2; i >= 0; i-- {
		if err := s.Undo(); err != nil {
			t.Fatal(err)
		}
		if got := s.Query().String(); got != states[i] {
			t.Fatalf("undo to state %d:\n  %s\n  %s", i, got, states[i])
		}
	}
}

func TestUndoRevertsWeight(t *testing.T) {
	s := newSession(t)
	preds := s.Result().PredicateInfos()
	_ = preds
	p := s.Query().Where
	if err := s.SetWeight(p, 7); err != nil {
		t.Fatal(err)
	}
	if err := s.Undo(); err != nil {
		t.Fatal(err)
	}
	if s.Query().Where.Weight() != 1 {
		t.Fatalf("weight not reverted: %v", s.Query().Where.Weight())
	}
}

func TestSetQuery(t *testing.T) {
	s := newSession(t)
	resultsBefore := s.Result().Stats().NumResults
	if err := s.SetQuery(`SELECT x FROM T WHERE x >= 0`); err != nil {
		t.Fatal(err)
	}
	if got := s.Result().Stats().NumResults; got != 20 {
		t.Fatalf("new query results: %d", got)
	}
	if err := s.Undo(); err != nil {
		t.Fatal(err)
	}
	if got := s.Result().Stats().NumResults; got != resultsBefore {
		t.Fatalf("undo of SetQuery: %d vs %d", got, resultsBefore)
	}
	if err := s.SetQuery(`garbage`); err == nil {
		t.Fatal("bad query should fail without mutating state")
	}
	if !strings.Contains(s.Query().String(), "x > 15") {
		t.Fatal("failed SetQuery should leave the query untouched")
	}
}

func TestSetQueryClearsProjectionAndSelection(t *testing.T) {
	s := newSession(t)
	item := s.Result().TopK(1)[0]
	if err := s.SelectItem(item); err != nil {
		t.Fatal(err)
	}
	preds := s.Query().Where
	if err := s.ProjectColorRange(preds, 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.SetQuery(`SELECT x FROM T WHERE x > 1`); err != nil {
		t.Fatal(err)
	}
	if s.SelectedItem() != -1 {
		t.Fatal("selection should clear on query replacement")
	}
	// Windows must render without the stale projection.
	if _, err := s.Windows(); err != nil {
		t.Fatal(err)
	}
}
