package session

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

func quickSession(t *testing.T) *Session {
	t.Helper()
	cat := dataset.NewCatalog()
	tbl, err := dataset.NewTable("Q", dataset.Schema{
		{Name: "x", Kind: dataset.KindFloat},
		{Name: "y", Kind: dataset.KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		x := dataset.Float(float64(i % 25))
		y := dataset.Float(float64(i % 10))
		if i%20 == 19 {
			x = dataset.Null(dataset.KindFloat)
		}
		if err := tbl.AppendRow(x, y); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	s, err := NewSQL(cat, nil, core.Options{GridW: 12, GridH: 12},
		`SELECT x FROM Q WHERE x > 10 AND y <= 5`)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestQuickCountMatchesEngine(t *testing.T) {
	s := quickSession(t)
	qc, err := NewQuickCounter(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := qc.Count(s)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Result().Stats().NumResults
	if got != want {
		t.Fatalf("quick count %d vs engine %d", got, want)
	}
	if qc.Misses() != 1 || qc.Hits() != 0 {
		t.Fatalf("counters: %d/%d", qc.Hits(), qc.Misses())
	}
}

func TestQuickCountTracksSliderWithCacheHits(t *testing.T) {
	s := quickSession(t)
	qc, err := NewQuickCounter(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qc.Count(s); err != nil {
		t.Fatal(err)
	}
	// Disable auto-recalc: the paper's scenario where the full pipeline
	// is too expensive per slider tick, but the count stays live.
	if err := s.SetAutoRecalc(false); err != nil {
		t.Fatal(err)
	}
	c, err := s.FindCond("x")
	if err != nil {
		t.Fatal(err)
	}
	// Nudge the slider slightly: x > 11 — inside the over-fetched box.
	if err := s.SetRange(c, 11, math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	got, err := qc.Count(s)
	if err != nil {
		t.Fatal(err)
	}
	if qc.Hits() != 1 {
		t.Fatalf("expected an incremental cache hit, counters %d/%d", qc.Hits(), qc.Misses())
	}
	// Cross-check against a fresh engine run.
	if err := s.SetAutoRecalc(true); err != nil {
		t.Fatal(err)
	}
	want := s.Result().Stats().NumResults
	if got != want {
		t.Fatalf("quick count %d vs engine %d", got, want)
	}
}

func TestQuickCountStrictBoundaries(t *testing.T) {
	s := quickSession(t)
	qc, err := NewQuickCounter(s)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := s.FindCond("x")
	// x BETWEEN 10 AND 12 (inclusive) vs the engine.
	if err := s.SetRange(c, 10, 12); err != nil {
		t.Fatal(err)
	}
	got, err := qc.Count(s)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Result().Stats().NumResults
	if got != want {
		t.Fatalf("between: quick %d vs engine %d", got, want)
	}
}

func TestQuickCountUnsupportedShapes(t *testing.T) {
	cat := dataset.NewCatalog()
	tbl, _ := dataset.NewTable("Q", dataset.Schema{
		{Name: "x", Kind: dataset.KindFloat},
		{Name: "s", Kind: dataset.KindString},
	})
	_ = tbl.AppendRow(dataset.Float(1), dataset.Str("a"))
	_ = cat.AddTable(tbl)
	cases := []string{
		`SELECT x FROM Q WHERE x > 1 OR x < 0`,  // disjunction
		`SELECT x FROM Q WHERE s = 'a'`,         // non-numeric
		`SELECT x FROM Q WHERE x > 1 AND x < 5`, // duplicate attribute
		`SELECT x FROM Q WHERE NOT (x > 1)`,     // negation
		`SELECT x FROM Q WHERE x IN (1, 2)`,     // IN list
		`SELECT x FROM Q`,                       // no condition
	}
	for _, sql := range cases {
		s, err := NewSQL(cat, nil, core.Options{GridW: 4, GridH: 4}, sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if _, err := NewQuickCounter(s); err == nil {
			t.Errorf("%s: expected unsupported-shape error", sql)
		}
	}
}

func TestQuickCountShapeChangeDetected(t *testing.T) {
	s := quickSession(t)
	qc, err := NewQuickCounter(s)
	if err != nil {
		t.Fatal(err)
	}
	// Structurally change the query behind the counter's back.
	s.q.Where = nil
	if _, err := qc.Count(s); err == nil {
		t.Error("shape change should be detected")
	}
}
