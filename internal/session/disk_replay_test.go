package session

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/query"
)

// mismatch compares two sessions' current results bitwise — combined
// distances, display shape, order prefix and every predicate window
// vector — as a plain error for lockstep replay loops.
func mismatch(step string, a, b *Session) error {
	ra, rb := a.Result(), b.Result()
	if ra.N != rb.N || ra.Displayed != rb.Displayed {
		return fmt.Errorf("%s: N %d vs %d, Displayed %d vs %d", step, ra.N, rb.N, ra.Displayed, rb.Displayed)
	}
	ca, cb := ra.Combined(), rb.Combined()
	for i := range ca {
		x, y := ca[i], cb[i]
		if math.Float64bits(x) != math.Float64bits(y) && !(math.IsNaN(x) && math.IsNaN(y)) {
			return fmt.Errorf("%s: combined[%d] %v vs %v", step, i, x, y)
		}
	}
	for rank := 0; rank < ra.Displayed; rank++ {
		if ra.Order[rank] != rb.Order[rank] {
			return fmt.Errorf("%s: order[%d] %d vs %d", step, rank, ra.Order[rank], rb.Order[rank])
		}
	}
	pa := query.Predicates(a.Query().Where)
	pb := query.Predicates(b.Query().Where)
	if len(pa) != len(pb) {
		return fmt.Errorf("%s: predicate count %d vs %d", step, len(pa), len(pb))
	}
	for pi := range pa {
		for i := 0; i < ra.N; i++ {
			x, errA := ra.NormOf(pa[pi], i)
			y, errB := rb.NormOf(pb[pi], i)
			if (errA == nil) != (errB == nil) {
				return fmt.Errorf("%s: NormOf error mismatch on predicate %d", step, pi)
			}
			if errA != nil {
				break
			}
			if math.Float64bits(x) != math.Float64bits(y) && !(math.IsNaN(x) && math.IsNaN(y)) {
				return fmt.Errorf("%s: predicate %d item %d: %v vs %v", step, pi, i, x, y)
			}
		}
	}
	return nil
}

// TestDiskReplayBitIdentical is the file-backed identity property: the
// same randomized interaction script — range drags, weight changes,
// percent-displayed moves, undos — driven in lockstep over the
// in-memory catalog and both file-backed read backends (mmap where
// available, the ReadAt fallback) produces bit-identical results at
// every step. The decoded-segment cache is squeezed to near nothing,
// so most reads re-decode segments from the file; the interior
// normalization sketch stays active on all three sessions, so the warm
// fast path is covered too, not just cold scans.
func TestDiskReplayBitIdentical(t *testing.T) {
	const n = 2*4096 + 123 // spans three segments
	mem := interactionCatalog(t, n)
	segPath := filepath.Join(t.TempDir(), "s.visdb")
	epoch, err := dataset.WriteCatalogFile(segPath, mem)
	if err != nil {
		t.Fatal(err)
	}
	if epoch == 0 {
		t.Fatal("segment file carries no content epoch")
	}

	open := func(force bool) *dataset.Catalog {
		t.Helper()
		c, err := dataset.OpenCatalogFile(segPath, dataset.OpenOptions{
			ForceReadAt: force,
			CacheBytes:  1, // degrades to one resident segment, never fails
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		if c.Epoch() != epoch {
			t.Fatalf("opened epoch %x, wrote %x", c.Epoch(), epoch)
		}
		return c
	}

	opt := core.Options{GridW: 16, GridH: 16}
	sql := `SELECT a FROM S WHERE a > 50 AND b < 40 OR c BETWEEN 20 AND 30 WEIGHT 2`
	sessions := map[string]*Session{}
	for name, cat := range map[string]*dataset.Catalog{
		"mem":    mem,
		"mmap":   open(false),
		"readat": open(true),
	} {
		s, err := NewSQL(cat, nil, opt, sql)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sessions[name] = s
	}
	compare := func(step string) {
		t.Helper()
		for _, name := range []string{"mmap", "readat"} {
			if err := mismatch(step+" ["+name+"]", sessions[name], sessions["mem"]); err != nil {
				t.Fatal(err)
			}
		}
	}
	compare("initial")

	rng := rand.New(rand.NewSource(61))
	attrs := []string{"a", "b", "c"}
	apply := func(step string, f func(s *Session) error) {
		t.Helper()
		for name, s := range sessions {
			if err := f(s); err != nil {
				t.Fatalf("%s [%s]: %v", step, name, err)
			}
		}
		compare(step)
	}
	for step := 0; step < 40; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // range drag
			attr := attrs[rng.Intn(len(attrs))]
			lo := math.Floor(rng.Float64() * 80)
			hi := lo + math.Floor(rng.Float64()*40)
			switch rng.Intn(3) {
			case 0:
				hi = math.Inf(1)
			case 1:
				lo = math.Inf(-1)
			}
			apply(fmt.Sprintf("step %d: drag %s to [%g,%g]", step, attr, lo, hi), func(s *Session) error {
				c, err := s.FindCond(attr)
				if err != nil {
					return err
				}
				return s.SetRange(c, lo, hi)
			})
		case op < 7: // weight change (own-node and sibling drags)
			i := rng.Intn(2)
			w := []float64{0.5, 1, 2, 3}[rng.Intn(4)]
			apply(fmt.Sprintf("step %d: weight pred %d = %g", step, i, w), func(s *Session) error {
				return s.SetWeight(query.Predicates(s.Query().Where)[i], w)
			})
		case op < 8: // percent-displayed slider
			pct := []float64{0, 0.1, 0.5, 1}[rng.Intn(4)]
			apply(fmt.Sprintf("step %d: pct %g", step, pct), func(s *Session) error {
				return s.SetPercentDisplayed(pct)
			})
		default: // undo
			if !sessions["mem"].CanUndo() {
				continue
			}
			apply(fmt.Sprintf("step %d: undo", step), func(s *Session) error {
				return s.Undo()
			})
		}
	}
	// The warm fast path must actually have been exercised on the
	// file-backed sessions, not just the in-memory one.
	for _, name := range []string{"mmap", "readat"} {
		if sessions[name].Result().Timings.SketchHits == 0 && sessions[name].Result().Timings.CacheHits == 0 {
			t.Errorf("%s session finished with no cache activity at all", name)
		}
	}
}
