package session

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/arrange"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/render"
)

func testCatalog(t *testing.T) *dataset.Catalog {
	t.Helper()
	cat := dataset.NewCatalog()
	tbl, err := dataset.NewTable("T", dataset.Schema{
		{Name: "x", Kind: dataset.KindFloat},
		{Name: "y", Kind: dataset.KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := tbl.AppendRow(dataset.Float(float64(i)), dataset.Float(float64(19-i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	return cat
}

func newSession(t *testing.T) *Session {
	t.Helper()
	s, err := NewSQL(testCatalog(t), nil, core.Options{GridW: 8, GridH: 8},
		`SELECT x FROM T WHERE x > 15 AND y > 10`)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRunsOnce(t *testing.T) {
	s := newSession(t)
	if s.Recalcs != 1 || s.Dirty() {
		t.Fatalf("recalcs=%d dirty=%v", s.Recalcs, s.Dirty())
	}
	if s.Result() == nil || s.Result().N != 20 {
		t.Fatal("initial result")
	}
}

func TestSliderChangesResults(t *testing.T) {
	s := newSession(t)
	before := s.Result().Stats().NumResults // x>15 AND y>10 → impossible (x>15 → y<4)
	if before != 0 {
		t.Fatalf("before: %d", before)
	}
	c, err := s.FindCond("x")
	if err != nil {
		t.Fatal(err)
	}
	// Widen x to >= 5: rows 5..8 satisfy both (y=14..11 > 10).
	if err := s.SetRange(c, 5, math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	after := s.Result().Stats().NumResults
	if after != 4 {
		t.Fatalf("after widening: %d, want 4", after)
	}
	if s.Recalcs != 2 {
		t.Fatalf("auto recalc should have run: %d", s.Recalcs)
	}
}

func TestSetRangeForms(t *testing.T) {
	s := newSession(t)
	c, _ := s.FindCond("x")
	if err := s.SetRange(c, 2, 5); err != nil {
		t.Fatal(err)
	}
	if c.Op != query.OpBetween || c.Lo.F != 2 || c.Hi.F != 5 {
		t.Fatalf("between form: %+v", c)
	}
	if err := s.SetRange(c, math.Inf(-1), 7); err != nil {
		t.Fatal(err)
	}
	if c.Op != query.OpLe || c.Value.F != 7 {
		t.Fatalf("<= form: %+v", c)
	}
	if err := s.SetRange(c, 3, math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if c.Op != query.OpGe || c.Value.F != 3 {
		t.Fatalf(">= form: %+v", c)
	}
	if err := s.SetRange(c, 5, 2); err == nil {
		t.Error("reversed range should fail")
	}
	if err := s.SetRange(c, math.Inf(-1), math.Inf(1)); err == nil {
		t.Error("doubly-open range should fail")
	}
	if err := s.SetRange(c, math.NaN(), 1); err == nil {
		t.Error("NaN should fail")
	}
}

func TestAutoRecalcOff(t *testing.T) {
	s := newSession(t)
	if err := s.SetAutoRecalc(false); err != nil {
		t.Fatal(err)
	}
	c, _ := s.FindCond("x")
	if err := s.SetRange(c, 0, 10); err != nil {
		t.Fatal(err)
	}
	if !s.Dirty() {
		t.Fatal("should be dirty")
	}
	if s.Recalcs != 1 {
		t.Fatalf("no recalc should have happened: %d", s.Recalcs)
	}
	if !strings.Contains(s.PanelText(), "stale") {
		t.Error("panel should flag staleness")
	}
	// Turning auto back on flushes the pending recalculation.
	if err := s.SetAutoRecalc(true); err != nil {
		t.Fatal(err)
	}
	if s.Dirty() || s.Recalcs != 2 {
		t.Fatalf("dirty=%v recalcs=%d", s.Dirty(), s.Recalcs)
	}
}

func TestSetWeight(t *testing.T) {
	s := newSession(t)
	preds := query.Predicates(s.Query().Where)
	if err := s.SetWeight(preds[0], 3); err != nil {
		t.Fatal(err)
	}
	if preds[0].Weight() != 3 {
		t.Fatal("weight not applied")
	}
	if err := s.SetWeight(preds[0], -1); err == nil {
		t.Error("negative weight should fail")
	}
	if err := s.SetWeight(preds[0], math.NaN()); err == nil {
		t.Error("NaN weight should fail")
	}
}

func TestSetMedianDeviation(t *testing.T) {
	s := newSession(t)
	c, _ := s.FindCond("x")
	if err := s.SetMedianDeviation(c, 10, 3); err != nil {
		t.Fatal(err)
	}
	if c.Op != query.OpBetween || c.Lo.F != 7 || c.Hi.F != 13 {
		t.Fatalf("median±dev form: %+v", c)
	}
	if err := s.SetMedianDeviation(c, 5, -1); err == nil {
		t.Error("negative deviation should fail")
	}
	if err := s.SetMedianDeviation(c, math.NaN(), 1); err == nil {
		t.Error("NaN median should fail")
	}
	if !s.AutoRecalc() {
		t.Error("AutoRecalc accessor")
	}
}

func TestSetRangeOnTimeAttribute(t *testing.T) {
	cat := dataset.NewCatalog()
	tbl, _ := dataset.NewTable("TS", dataset.Schema{
		{Name: "ts", Kind: dataset.KindTime},
	})
	base := time.Date(1994, 5, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		_ = tbl.AppendRow(dataset.Time(base.Add(time.Duration(i) * time.Hour)))
	}
	_ = cat.AddTable(tbl)
	s, err := NewSQL(cat, nil, core.Options{GridW: 4, GridH: 4},
		`SELECT ts FROM TS WHERE ts > '1994-05-01T05:00:00Z'`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.FindCond("ts")
	if err != nil {
		t.Fatal(err)
	}
	// Slider moves express time in Unix seconds; the session converts
	// to time literals so the binder keeps accepting the query.
	lo := float64(base.Add(2 * time.Hour).Unix())
	hi := float64(base.Add(6 * time.Hour).Unix())
	if err := s.SetRange(c, lo, hi); err != nil {
		t.Fatal(err)
	}
	if got := s.Result().Stats().NumResults; got != 5 { // hours 2..6
		t.Fatalf("time slider results: %d", got)
	}
	if c.Lo.Kind != dataset.KindTime {
		t.Fatalf("literal kind: %v", c.Lo.Kind)
	}
}

func TestSetPercentDisplayed(t *testing.T) {
	s := newSession(t)
	if err := s.SetPercentDisplayed(0.25); err != nil {
		t.Fatal(err)
	}
	if got := s.Result().Displayed; got != 5 {
		t.Fatalf("displayed: %d, want 5", got)
	}
	if err := s.SetPercentDisplayed(1.5); err == nil {
		t.Error("pct > 1 should fail")
	}
}

func TestSelectionAndHighlight(t *testing.T) {
	s := newSession(t)
	res := s.Result()
	item := res.TopK(1)[0]
	if err := s.SelectItem(item); err != nil {
		t.Fatal(err)
	}
	tup, ok := s.SelectedTuple()
	if !ok || len(tup.Rows) != 1 {
		t.Fatal("selected tuple")
	}
	// Highlight appears in every window at the item's cell.
	cell, _ := res.CellOfItem(item)
	ws, err := s.Windows()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		im := w.Image()
		px := im.At(cell.X*w.Block, cell.Y*w.Block)
		if px.R != 255 || px.G != 255 || px.B != 255 {
			t.Fatalf("window %q: cell not highlighted", w.Title)
		}
	}
	// Select by cell round trip.
	s.ClearSelection()
	if s.SelectedItem() != -1 {
		t.Fatal("clear selection")
	}
	s.Select(cell)
	if s.SelectedItem() != item {
		t.Fatalf("select by cell: %d vs %d", s.SelectedItem(), item)
	}
	// Selecting an empty cell clears.
	s.Select(arrange.Pt(9999, 9999))
	if s.SelectedItem() != -1 {
		t.Fatal("empty cell should clear selection")
	}
	if err := s.SelectItem(-5); err == nil {
		t.Error("bad item should fail")
	}
	if _, ok := s.SelectedTuple(); ok {
		t.Error("no selection should report !ok")
	}
}

func TestColorProjection(t *testing.T) {
	s := newSession(t)
	preds := query.Predicates(s.Query().Where)
	if err := s.ProjectColorRange(preds[0], 0, 0); err != nil {
		t.Fatal(err)
	}
	wsProj, err := s.Windows()
	if err != nil {
		t.Fatal(err)
	}
	s.ClearProjection()
	wsAll, err := s.Windows()
	if err != nil {
		t.Fatal(err)
	}
	// Projection must show at most as many cells as the full view, and
	// more than zero (the yellow items survive).
	nProj := litCells(wsProj)
	nAll := litCells(wsAll)
	if nProj > nAll {
		t.Fatalf("projection enlarged display: %d > %d", nProj, nAll)
	}
	if nProj == 0 {
		t.Fatal("projection should keep the yellow items")
	}
	// Unknown expression errors.
	if err := s.ProjectColorRange(&query.Cond{Attr: "zz"}, 0, 0); err == nil {
		t.Error("unknown expr should fail")
	}
	// Nil expression projects on the overall result; the full band
	// keeps every displayed item.
	if err := s.ProjectColorRange(nil, 0, 255); err != nil {
		t.Fatalf("overall projection: %v", err)
	}
	wsOverall, err := s.Windows()
	if err != nil {
		t.Fatal(err)
	}
	if litCells(wsOverall) != nAll {
		t.Fatalf("full-band overall projection should keep everything: %d vs %d", litCells(wsOverall), nAll)
	}
}

// litCells counts explicitly set cells across windows.
func litCells(ws []*render.Window) int {
	n := 0
	for _, w := range ws {
		for y := 0; y < w.GridH; y++ {
			for x := 0; x < w.GridW; x++ {
				if _, ok := w.CellAt(arrange.Pt(x, y)); ok {
					n++
				}
			}
		}
	}
	return n
}

func TestDrillDown(t *testing.T) {
	s, err := NewSQL(testCatalog(t), nil, core.Options{GridW: 8, GridH: 8},
		`SELECT x FROM T WHERE (x > 15 OR y > 15) AND x < 19`)
	if err != nil {
		t.Fatal(err)
	}
	orPart := s.Query().Where.(*query.BoolExpr).Children[0]
	ws, err := s.DrillDown(orPart, false)
	if err != nil {
		t.Fatal(err)
	}
	// Overall-OR + 2 predicate windows.
	if len(ws) != 3 {
		t.Fatalf("drill-down windows: %d", len(ws))
	}
	if !strings.Contains(ws[0].Title, "overall") {
		t.Fatalf("first title: %s", ws[0].Title)
	}
	indep, err := s.DrillDown(orPart, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(indep) != 3 || !strings.Contains(indep[0].Title, "independent") {
		t.Fatalf("independent drill-down: %d windows", len(indep))
	}
}

func TestPanelText(t *testing.T) {
	s := newSession(t)
	txt := s.PanelText()
	for _, want := range []string{"# objects    20", "# displayed", "% displayed", "# of results", "query range"} {
		if !strings.Contains(txt, want) {
			t.Errorf("panel missing %q:\n%s", want, txt)
		}
	}
	item := s.Result().TopK(1)[0]
	_ = s.SelectItem(item)
	if !strings.Contains(s.PanelText(), "selected tuple") {
		t.Error("panel should show the selected tuple")
	}
}

func TestImageComposition(t *testing.T) {
	s := newSession(t)
	im, err := s.Image(2)
	if err != nil {
		t.Fatal(err)
	}
	if im.W == 0 || im.H == 0 {
		t.Fatal("empty session image")
	}
}

func TestFindCondErrors(t *testing.T) {
	s := newSession(t)
	if _, err := s.FindCond("nope"); err == nil {
		t.Error("unknown attribute should fail")
	}
	c, err := s.FindCond("y")
	if err != nil || c.Attr != "y" {
		t.Fatalf("FindCond(y): %+v %v", c, err)
	}
}

func TestNewSQLParseError(t *testing.T) {
	if _, err := NewSQL(testCatalog(t), nil, core.Options{}, `garbage`); err == nil {
		t.Error("parse error should propagate")
	}
}
