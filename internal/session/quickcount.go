package session

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/kdtree"
	"repro/internal/query"
)

// QuickCounter answers "# of results" for slider movements without
// re-running the engine, using the multidimensional index the paper's
// conclusions call for: "multidimensional data structures that support
// range queries on multiple attributes will be essential to improve
// query performance" (section 6). It also applies the incremental
// strategy sketched there — "to retrieve more data than necessary in
// the beginning and to retrieve only the additional portion of the
// data that is needed for a slightly modified query later on" — via
// the k-d tree's over-fetching cache.
//
// It supports single-table queries whose condition is a conjunction of
// numeric range predicates over distinct attributes (the shape sliders
// produce).
type QuickCounter struct {
	attrs []string
	cache *kdtree.Cache
	n     int
}

// NewQuickCounter builds the index for a session's query, or reports
// why the query shape is unsupported.
func NewQuickCounter(s *Session) (*QuickCounter, error) {
	q := s.Query()
	if len(q.From) != 1 {
		return nil, fmt.Errorf("session: quick count needs a single-table query")
	}
	attrs, err := conjunctiveRangeAttrs(q.Where, s.res.Binding)
	if err != nil {
		return nil, err
	}
	t, err := s.cat.Table(q.From[0])
	if err != nil {
		return nil, err
	}
	cols := make([][]float64, len(attrs))
	for i, a := range attrs {
		cols[i], err = t.FloatsOf(a)
		if err != nil {
			return nil, err
		}
	}
	points := make([][]float64, 0, t.NumRows())
	for row := 0; row < t.NumRows(); row++ {
		p := make([]float64, len(attrs))
		skip := false
		for i := range attrs {
			v := cols[i][row]
			if math.IsNaN(v) {
				skip = true // NULLs never satisfy; leave them out
				break
			}
			p[i] = v
		}
		if skip {
			continue
		}
		points = append(points, p)
	}
	tree, err := kdtree.Build(points)
	if err != nil {
		return nil, err
	}
	return &QuickCounter{
		attrs: attrs,
		cache: kdtree.NewCache(tree, 0.3),
		n:     t.NumRows(),
	}, nil
}

// conjunctiveRangeAttrs validates the query shape and returns the
// attribute order of the index dimensions.
func conjunctiveRangeAttrs(e query.Expr, b *query.Binding) ([]string, error) {
	var conds []*query.Cond
	switch n := e.(type) {
	case nil:
		return nil, fmt.Errorf("session: quick count needs a condition")
	case *query.Cond:
		conds = []*query.Cond{n}
	case *query.BoolExpr:
		if n.Op != query.And {
			return nil, fmt.Errorf("session: quick count supports conjunctions only")
		}
		for _, c := range n.Children {
			cond, ok := c.(*query.Cond)
			if !ok {
				return nil, fmt.Errorf("session: quick count supports simple conditions only")
			}
			conds = append(conds, cond)
		}
	default:
		return nil, fmt.Errorf("session: quick count supports simple conditions only")
	}
	seen := map[string]bool{}
	var attrs []string
	for _, c := range conds {
		attr, ok := b.Attrs[c]
		if !ok || !attr.Kind.IsNumeric() {
			return nil, fmt.Errorf("session: quick count needs bound numeric attributes")
		}
		switch c.Op {
		case query.OpGt, query.OpGe, query.OpLt, query.OpLe, query.OpBetween, query.OpEq:
		default:
			return nil, fmt.Errorf("session: quick count does not support operator %s", c.Op)
		}
		if seen[attr.Attr] {
			return nil, fmt.Errorf("session: quick count needs distinct attributes per condition")
		}
		seen[attr.Attr] = true
		attrs = append(attrs, attr.Attr)
	}
	return attrs, nil
}

// Count evaluates the current query ranges against the index. It is
// exact for the supported query shape (boundary strictness included)
// and hits the incremental cache when the new box lies within the
// previously over-fetched one.
func (qc *QuickCounter) Count(s *Session) (int, error) {
	conds, err := currentConds(s.Query().Where)
	if err != nil {
		return 0, err
	}
	if len(conds) != len(qc.attrs) {
		return 0, fmt.Errorf("session: query shape changed (have %d conditions, index has %d)", len(conds), len(qc.attrs))
	}
	lo := make([]float64, len(qc.attrs))
	hi := make([]float64, len(qc.attrs))
	for i, attr := range qc.attrs {
		c := findCondByAttr(conds, attr)
		if c == nil {
			return 0, fmt.Errorf("session: no condition on indexed attribute %q", attr)
		}
		l, h, err := condBox(c)
		if err != nil {
			return 0, err
		}
		lo[i], hi[i] = l, h
	}
	ids, err := qc.cache.Range(lo, hi)
	if err != nil {
		return 0, err
	}
	return len(ids), nil
}

// Hits and Misses expose the incremental-cache counters.
func (qc *QuickCounter) Hits() int   { return qc.cache.Hits }
func (qc *QuickCounter) Misses() int { return qc.cache.Misses }

func currentConds(e query.Expr) ([]*query.Cond, error) {
	switch n := e.(type) {
	case *query.Cond:
		return []*query.Cond{n}, nil
	case *query.BoolExpr:
		var out []*query.Cond
		for _, c := range n.Children {
			cond, ok := c.(*query.Cond)
			if !ok {
				return nil, fmt.Errorf("session: query shape changed")
			}
			out = append(out, cond)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("session: query shape changed")
	}
}

func findCondByAttr(conds []*query.Cond, attr string) *query.Cond {
	for _, c := range conds {
		if c.Attr == attr || hasSuffixDot(c.Attr, attr) {
			return c
		}
	}
	return nil
}

func hasSuffixDot(s, suffix string) bool {
	return len(s) > len(suffix)+1 && s[len(s)-len(suffix)-1] == '.' && s[len(s)-len(suffix):] == suffix
}

// condBox converts a condition into an inclusive [lo, hi] box side.
// Strict bounds nudge by the smallest representable step so the k-d
// range query (inclusive) matches boolean semantics.
func condBox(c *query.Cond) (lo, hi float64, err error) {
	val := func(v dataset.Value) (float64, error) {
		f, ok := v.AsFloat()
		if !ok {
			return 0, fmt.Errorf("session: non-numeric literal in %q", c.Label())
		}
		return f, nil
	}
	switch c.Op {
	case query.OpGt:
		v, err := val(c.Value)
		return math.Nextafter(v, math.Inf(1)), math.Inf(1), err
	case query.OpGe:
		v, err := val(c.Value)
		return v, math.Inf(1), err
	case query.OpLt:
		v, err := val(c.Value)
		return math.Inf(-1), math.Nextafter(v, math.Inf(-1)), err
	case query.OpLe:
		v, err := val(c.Value)
		return math.Inf(-1), v, err
	case query.OpEq:
		v, err := val(c.Value)
		return v, v, err
	case query.OpBetween:
		l, err := val(c.Lo)
		if err != nil {
			return 0, 0, err
		}
		h, err := val(c.Hi)
		return l, h, err
	default:
		return 0, 0, fmt.Errorf("session: unsupported operator %s", c.Op)
	}
}
