package session

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
)

// TestConcurrentSharedSessionsMatchFreshEngine is the multi-tenant
// identity property (run it under -race): many goroutine sessions on
// one catalog-level shared cache, each driving its own randomized
// interaction script — range drags, weight changes, undos — and each
// asserting, at every step, that its result is bit-identical to a
// fresh, isolated engine run of its current query. Cross-session
// sharing must be invisible except in the timings.
func TestConcurrentSharedSessionsMatchFreshEngine(t *testing.T) {
	const (
		goroutines = 8
		steps      = 12
	)
	cat := interactionCatalog(t, 400)
	opt := core.Options{GridW: 8, GridH: 8}
	shared := core.NewSharedCache(0, 0)
	// Three overlapping queries so sessions share some leaves, drag
	// others apart, and prune differently on undo.
	queries := []string{
		`SELECT a FROM S WHERE a > 50 AND b < 40`,
		`SELECT a FROM S WHERE a > 50 AND c BETWEEN 20 AND 30`,
		`SELECT a FROM S WHERE a > 50 AND b < 40 OR c BETWEEN 20 AND 30 WEIGHT 2`,
	}
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			fail := func(err error) {
				select {
				case errs <- fmt.Errorf("session %d: %w", g, err):
				default:
				}
			}
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			s, err := NewSQLShared(cat, nil, opt, queries[g%len(queries)], shared)
			if err != nil {
				fail(err)
				return
			}
			if err := freshMismatch("initial", s, cat, opt); err != nil {
				fail(err)
				return
			}
			attrs := []string{"a", "b", "c"}
			for step := 0; step < steps; step++ {
				label := fmt.Sprintf("step %d", step)
				switch op := rng.Intn(10); {
				case op < 5: // range drag
					attr := attrs[rng.Intn(len(attrs))]
					c, err := s.FindCond(attr)
					if err != nil {
						continue // this session's query has no such condition
					}
					lo := math.Floor(rng.Float64() * 80)
					hi := lo + math.Floor(rng.Float64()*40)
					if rng.Intn(3) == 0 {
						err = s.SetRange(c, lo, math.Inf(1))
					} else {
						err = s.SetRange(c, lo, hi)
					}
					if err != nil {
						fail(fmt.Errorf("%s: drag: %w", label, err))
						return
					}
				case op < 8: // weight change (sometimes a no-op)
					preds := query.Predicates(s.Query().Where)
					p := preds[rng.Intn(len(preds))]
					if err := s.SetWeight(p, []float64{0.5, 1, 2, 3}[rng.Intn(4)]); err != nil {
						fail(fmt.Errorf("%s: weight: %w", label, err))
						return
					}
				default: // undo
					if !s.CanUndo() {
						continue
					}
					if err := s.Undo(); err != nil {
						fail(fmt.Errorf("%s: undo: %w", label, err))
						return
					}
				}
				if err := freshMismatch(label, s, cat, opt); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := shared.Stats()
	if st.Hits == 0 {
		t.Fatalf("no cross-session sharing happened: %+v", st)
	}
	if st.Fills == 0 || st.Bytes <= 0 {
		t.Fatalf("shared tier never filled: %+v", st)
	}
}

// TestSharedSessionsReportSharedHits: the second session on a catalog
// starts warm — its initial run serves every leaf from the shared tier
// and says so in StageTimings.
func TestSharedSessionsReportSharedHits(t *testing.T) {
	cat := interactionCatalog(t, 300)
	opt := core.Options{GridW: 8, GridH: 8}
	shared := core.NewSharedCache(0, 0)
	const sql = `SELECT a FROM S WHERE a > 50 AND b < 40`
	s1, err := NewSQLShared(cat, nil, opt, sql, shared)
	if err != nil {
		t.Fatal(err)
	}
	if tm := s1.Result().Timings; tm.SharedHits != 0 || tm.CacheMisses != 2 {
		t.Fatalf("first session timings: %+v", tm)
	}
	s2, err := NewSQLShared(cat, nil, opt, sql, shared)
	if err != nil {
		t.Fatal(err)
	}
	if tm := s2.Result().Timings; tm.SharedHits != 2 || tm.CacheHits != 2 || tm.CacheMisses != 0 {
		t.Fatalf("second session timings: %+v", tm)
	}
	// One session's drag invalidates the superseded range in both
	// tiers, but the other session — still at that range — keeps its
	// private copy and stays warm.
	c1, err := s1.FindCond("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.SetRange(c1, 30, math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	p := query.Predicates(s2.Query().Where)[0]
	if err := s2.SetWeight(p, 2); err != nil {
		t.Fatal(err)
	}
	if tm := s2.Result().Timings; tm.CacheMisses != 0 {
		t.Fatalf("neighbor's drag invalidated a private entry: %+v", tm)
	}
	if err := freshMismatch("post-invalidation", s2, cat, opt); err != nil {
		t.Fatal(err)
	}
}
