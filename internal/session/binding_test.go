package session

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/query"
)

// TestRecalculateReusesBinding: the session binds the query once and
// reruns against the same binding; only a structural replacement
// (SetQuery, Undo) installs a new AST and rebinds.
func TestRecalculateReusesBinding(t *testing.T) {
	s := newSession(t)
	b := s.Result().Binding
	pred := query.Predicates(s.Query().Where)[0]
	if err := s.SetWeight(pred, 2); err != nil {
		t.Fatal(err)
	}
	if s.Result().Binding != b {
		t.Fatal("weight rerun rebound the query")
	}
	c, err := s.FindCond("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetRange(c, 1, 9); err != nil {
		t.Fatal(err)
	}
	if s.Result().Binding != b {
		t.Fatal("range rerun rebound the query")
	}
	// Undo re-parses the query: new AST, new binding.
	if err := s.Undo(); err != nil {
		t.Fatal(err)
	}
	if s.Result().Binding == b {
		t.Fatal("undo kept a binding for a replaced AST")
	}
}

// TestBindingStableUnderNegation is the regression test for the
// negation path's binding mutation: operator inversion used to insert
// a synthetic condition into the shared Binding.Attrs on every run,
// which would leak (and race) once the binding is cached across
// recalculations. The rewrite must stay private: reruns keep the
// binding map at its bound size, and results stay bit-identical to a
// fresh engine.
func TestBindingStableUnderNegation(t *testing.T) {
	cat := interactionCatalog(t, 300)
	opt := core.Options{GridW: 8, GridH: 8}
	// One invertible negation (NOT a > 50 → a <= 50) and one boolean
	// fallback is covered by the IN list negation below.
	s, err := NewSQL(cat, nil, opt,
		`SELECT a FROM S WHERE NOT (a > 50) AND NOT (b IN (1, 2)) OR c < 30`)
	if err != nil {
		t.Fatal(err)
	}
	b := s.Result().Binding
	bound := len(b.Attrs)
	preds := query.Predicates(s.Query().Where)
	for i := 0; i < 4; i++ {
		if err := s.SetWeight(preds[i%len(preds)], float64(2+i)); err != nil {
			t.Fatal(err)
		}
		if s.Result().Binding != b {
			t.Fatal("rerun rebound the query")
		}
		if got := len(b.Attrs); got != bound {
			t.Fatalf("rerun %d mutated the binding: %d attrs, bound %d", i, got, bound)
		}
		sameAsFresh(t, "negated rerun", s, cat, opt)
	}
}

// TestSetRangeRejectsNonNumeric: with the binding cached, the kind
// check that rebinding used to perform moved into SetRange itself.
func TestSetRangeRejectsNonNumeric(t *testing.T) {
	tbl, err := dataset.NewTable("T", dataset.Schema{
		{Name: "name", Kind: dataset.KindString},
		{Name: "x", Kind: dataset.KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow(dataset.Str("alpha"), dataset.Float(1)); err != nil {
		t.Fatal(err)
	}
	cat := dataset.NewCatalog()
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	s, err := NewSQL(cat, nil, core.Options{GridW: 4, GridH: 4},
		`SELECT x FROM T WHERE name = 'alpha' AND x > 0`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.FindCond("name")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetRange(c, 1, 2); err == nil {
		t.Fatal("SetRange on a string condition should fail")
	}
	// The failed modification must not leave the session dirty or its
	// query mutated.
	if s.Dirty() {
		t.Fatal("rejected SetRange left the session dirty")
	}
	if c.Op != query.OpEq || c.Value.S != "alpha" {
		t.Fatalf("rejected SetRange mutated the condition: %s", c.Label())
	}
	// The numeric slider still works.
	x, err := s.FindCond("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetRange(x, 0.5, math.Inf(1)); err != nil {
		t.Fatal(err)
	}
}
