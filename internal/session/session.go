// Package session implements the interactive layer of VisDB
// (section 4.3 of the paper): dynamic query modification through
// sliders and direct range edits, weighting-factor changes,
// percentage-displayed control, tuple selection with cross-window
// highlighting, color-range projection, the auto-recalculate toggle,
// and the figure-5 drill-down into arbitrary query parts. The original
// system drove these from mouse events; here they are methods on a
// deterministic state machine, so every interaction is scriptable and
// testable.
package session

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/arrange"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/query"
	"repro/internal/render"
)

// Session holds one interactive exploration of a query. A Session
// models a single user's interface state and is not safe for concurrent
// use; run one goroutine per session.
type Session struct {
	cat *dataset.Catalog
	reg *distance.Registry
	opt core.Options
	q   *query.Query
	res *core.Result
	// cache is the session-level predicate cache of the incremental
	// feedback loop: leaf distance vectors survive across Recalculate
	// calls (keyed structurally, weights excluded), and evaluation
	// buffers are pooled, so a weight-only rerun recomputes nothing
	// below the combination stage and a slider drag recomputes exactly
	// one leaf. When the session was opened with NewShared, the cache
	// is additionally backed by a catalog-level shared tier, so leaves
	// other sessions already computed are never recomputed here.
	cache *core.RunCache
	// bind is the cached query binding: resolved once per query AST and
	// reused across recalculations (the engine treats bindings as
	// read-only). SetQuery and Undo install a new AST, which
	// invalidates it by identity.
	bind *query.Binding

	autoRecalc bool
	dirty      bool
	// Recalcs counts engine runs, for the incremental-cost experiments
	// and the auto-recalculate-off tests.
	Recalcs int

	selectedItem int // -1 when nothing selected
	projExpr     query.Expr
	projLo       int
	projHi       int
	hasProj      bool

	// history holds serialized query snapshots for Undo; the paper's
	// interface lets the user return to earlier query states via the
	// query specification process.
	history []string

	// runCtx, when non-nil, bounds every engine run started by this
	// session: a recalculation observes the context's deadline or
	// cancellation between evaluation chunks and aborts with an error
	// wrapping context.DeadlineExceeded / context.Canceled. The serving
	// layer installs a fresh per-request context before each operation.
	runCtx context.Context
}

// New starts a session on a parsed query and runs it once.
func New(cat *dataset.Catalog, reg *distance.Registry, opt core.Options, q *query.Query) (*Session, error) {
	return NewShared(cat, reg, opt, q, nil)
}

// NewShared starts a session whose predicate cache is backed by a
// catalog-level shared tier: leaf distance vectors (and their quantile
// indexes) any session on the same SharedCache already computed are
// served instead of recomputed, and leaves computed here become
// available to every other session. Sessions themselves stay
// single-goroutine; any number of them may run concurrently against
// one shared cache. All sessions on one SharedCache must use the same
// catalog and distance registry. A nil shared is identical to New.
func NewShared(cat *dataset.Catalog, reg *distance.Registry, opt core.Options, q *query.Query, shared *core.SharedCache) (*Session, error) {
	return NewSharedCtx(nil, cat, reg, opt, q, shared)
}

// NewSharedCtx is NewShared with the initial recalculation bounded by
// ctx (see SetRunContext); the bound does not outlive construction.
func NewSharedCtx(ctx context.Context, cat *dataset.Catalog, reg *distance.Registry, opt core.Options, q *query.Query, shared *core.SharedCache) (*Session, error) {
	cache := core.NewRunCache()
	if shared != nil {
		cache.AttachShared(shared)
	}
	s := &Session{cat: cat, reg: reg, opt: opt, q: q, autoRecalc: true, selectedItem: -1,
		cache: cache, runCtx: ctx}
	if err := s.Recalculate(); err != nil {
		return nil, err
	}
	s.runCtx = nil
	return s, nil
}

// NewSQL starts a session from dialect text.
func NewSQL(cat *dataset.Catalog, reg *distance.Registry, opt core.Options, src string) (*Session, error) {
	return NewSQLShared(cat, reg, opt, src, nil)
}

// NewSQLShared starts a shared-tier session from dialect text.
func NewSQLShared(cat *dataset.Catalog, reg *distance.Registry, opt core.Options, src string, shared *core.SharedCache) (*Session, error) {
	return NewSQLSharedCtx(nil, cat, reg, opt, src, shared)
}

// NewSQLSharedCtx is NewSQLShared with the initial recalculation
// bounded by ctx (see SetRunContext); the bound does not outlive
// construction.
func NewSQLSharedCtx(ctx context.Context, cat *dataset.Catalog, reg *distance.Registry, opt core.Options, src string, shared *core.SharedCache) (*Session, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	return NewSharedCtx(ctx, cat, reg, opt, q, shared)
}

// Result returns the current result. When auto-recalculate is off and
// modifications are pending, the result is stale (Dirty reports true).
// The result's evaluation vectors live in the session's pooled buffers:
// they are valid until the next recalculation, which recycles them.
// Hold on to Run output from a standalone Engine instead if a result
// must outlive the interaction loop.
func (s *Session) Result() *core.Result { return s.res }

// Query returns the live query AST (mutated by the modification
// methods).
func (s *Session) Query() *query.Query { return s.q }

// Dirty reports whether modifications await recalculation.
func (s *Session) Dirty() bool { return s.dirty }

// AutoRecalc reports the auto-recalculate mode.
func (s *Session) AutoRecalc() bool { return s.autoRecalc }

// SetAutoRecalc toggles the "auto recalculate off" option the paper
// offers "for large databases or if complex distance functions are
// used". Turning it back on triggers a pending recalculation.
func (s *Session) SetAutoRecalc(on bool) error {
	s.autoRecalc = on
	if on && s.dirty {
		return s.Recalculate()
	}
	return nil
}

// SetRunContext bounds subsequent engine runs by ctx: a recalculation
// polls the context between evaluation chunks and aborts once it is
// done. A nil ctx (the default) removes the bound. Cancellation is
// safe: the session keeps serving its previous result, pooled buffers
// are reclaimed, and leaf vectors already computed stay cached, so a
// retry of the same operation resumes instead of starting over.
func (s *Session) SetRunContext(ctx context.Context) { s.runCtx = ctx }

// Recalculate re-runs the query through the engine. Reruns are
// incremental: leaf distance vectors unchanged since the previous run
// come from the session cache, evaluation buffers are pooled, and the
// query binding is resolved once per query AST and reused — range and
// weight modifications mutate the AST in place, which leaves the
// binding (keyed by condition identity) intact, while SetQuery and
// Undo parse a fresh AST and therefore rebind.
func (s *Session) Recalculate() error {
	e := core.New(s.cat, s.reg, s.opt)
	if s.bind == nil || s.bind.Query != s.q {
		b, err := query.Bind(s.q, s.cat)
		if err != nil {
			return err
		}
		s.bind = b
	}
	res, err := e.RunPreboundCtx(s.runCtx, s.q, s.bind, s.cache)
	if err != nil {
		return err
	}
	s.res = res
	s.dirty = false
	s.Recalcs++
	// A recomputation invalidates the tuple selection if the item is no
	// longer displayed.
	if s.selectedItem >= 0 {
		if _, ok := res.CellOfItem(s.selectedItem); !ok {
			s.selectedItem = -1
		}
	}
	return nil
}

// maybeRecalc recomputes if auto mode is on; otherwise marks the
// session dirty.
func (s *Session) maybeRecalc() error {
	if s.autoRecalc {
		return s.Recalculate()
	}
	s.dirty = true
	return nil
}

// snapshot records the current query state for Undo. Modification
// methods call it before mutating.
func (s *Session) snapshot() {
	s.history = append(s.history, s.q.String())
	// Bound the history so pathological slider storms stay cheap.
	const maxHistory = 256
	if len(s.history) > maxHistory {
		s.history = s.history[len(s.history)-maxHistory:]
	}
}

// popSnapshot discards the most recent Undo snapshot. Modification
// methods call it when the recalculation their mutation triggered
// fails and the mutation is rolled back: the aborted edit must not
// become an Undo step.
func (s *Session) popSnapshot() {
	if len(s.history) > 0 {
		s.history = s.history[:len(s.history)-1]
	}
}

// CanUndo reports whether an earlier query state exists.
func (s *Session) CanUndo() bool { return len(s.history) > 0 }

// Undo restores the most recent query snapshot (reverting the last
// range, weight or structural modification) and recomputes. The query
// AST is rebuilt, so condition pointers obtained earlier via FindCond
// become stale; projections and selections are cleared.
func (s *Session) Undo() error {
	if len(s.history) == 0 {
		return fmt.Errorf("session: nothing to undo")
	}
	src := s.history[len(s.history)-1]
	s.history = s.history[:len(s.history)-1]
	q, err := query.Parse(src)
	if err != nil {
		return fmt.Errorf("session: corrupt history entry: %w", err)
	}
	oldQ := s.q
	oldSel := s.selectedItem
	oldProjExpr, oldProjLo, oldProjHi, oldProj := s.projExpr, s.projLo, s.projHi, s.hasProj
	s.q = q
	// Per-condition invalidation: entries for conditions absent from
	// the restored query are dropped; surviving ones make the undo
	// recomputation as cheap as the drag it reverts.
	s.cache.Prune(q)
	s.ClearProjection()
	s.ClearSelection()
	if err := s.Recalculate(); err != nil {
		// Failed undo: put the popped snapshot back and reinstate the
		// query it would have reverted, so the session is exactly as
		// before the call and the undo can be retried.
		s.q = oldQ
		s.cache.Prune(oldQ)
		s.projExpr, s.projLo, s.projHi, s.hasProj = oldProjExpr, oldProjLo, oldProjHi, oldProj
		s.selectedItem = oldSel
		s.history = append(s.history, src)
		return err
	}
	return nil
}

// SetQuery replaces the whole query (the "switch back to the query
// specification process" menu option, section 4.3), keeping the old
// state undoable. Projections and selections are cleared, since they
// reference the old query's parts.
func (s *Session) SetQuery(src string) error {
	q, err := query.Parse(src)
	if err != nil {
		return err
	}
	oldQ := s.q
	oldSel := s.selectedItem
	oldProjExpr, oldProjLo, oldProjHi, oldProj := s.projExpr, s.projLo, s.projHi, s.hasProj
	s.snapshot()
	s.q = q
	// Drop cache entries for conditions the new query no longer
	// contains; shared conditions keep their vectors.
	s.cache.Prune(q)
	s.ClearProjection()
	s.ClearSelection()
	if err := s.maybeRecalc(); err != nil {
		// Failed (for example timed-out) recalculation: reinstate the
		// previous AST — its binding revalidates by identity — along with
		// the projection and selection that referenced it, and drop the
		// snapshot so the aborted edit is not undoable. The session keeps
		// serving its previous result.
		s.q = oldQ
		s.cache.Prune(oldQ)
		s.projExpr, s.projLo, s.projHi, s.hasProj = oldProjExpr, oldProjLo, oldProjHi, oldProj
		s.selectedItem = oldSel
		s.popSnapshot()
		return err
	}
	return nil
}

// FindCond locates a top-level (or nested) condition whose attribute
// matches name — a convenience for slider interactions addressed by
// attribute.
func (s *Session) FindCond(attr string) (*query.Cond, error) {
	var found *query.Cond
	query.Walk(s.q.Where, func(e query.Expr) {
		if c, ok := e.(*query.Cond); ok && found == nil {
			if c.Attr == attr || strings.HasSuffix(c.Attr, "."+attr) {
				found = c
			}
		}
	})
	if found == nil {
		return nil, fmt.Errorf("session: no condition on attribute %q", attr)
	}
	return found, nil
}

// SetRange moves a condition's query range (the slider drag or direct
// edit of the 'query' field). Open sides use ±Inf: the condition
// becomes >=, <= or BETWEEN accordingly. For time-typed attributes the
// bounds are interpreted as Unix seconds, so time sliders use the same
// numeric interface. A drag to the range the condition already
// expresses is a no-op: nothing is snapshotted, no recalculation runs
// (slider jitter used to snapshot and recompute anyway).
func (s *Session) SetRange(c *query.Cond, lo, hi float64) error {
	if math.IsNaN(lo) || math.IsNaN(hi) || lo > hi {
		return fmt.Errorf("session: invalid range [%v, %v]", lo, hi)
	}
	if math.IsInf(lo, -1) && math.IsInf(hi, 1) {
		return fmt.Errorf("session: range cannot be open on both sides")
	}
	lit := dataset.Float
	if s.res != nil {
		if attr, ok := s.res.Binding.Attrs[c]; ok {
			// Numeric ranges only: rebinding used to catch a numeric
			// literal landing on a string condition, but the binding is
			// now resolved once per query, so the kind check lives here.
			if attr.Kind.IsStringy() || attr.Kind == dataset.KindBool {
				return fmt.Errorf("session: range slider needs a numeric or time attribute, %s is %v", attr.Qualified(), attr.Kind)
			}
			if attr.Kind == dataset.KindTime {
				lit = func(v float64) dataset.Value {
					return dataset.Time(time.Unix(int64(v), 0).UTC())
				}
			}
		}
	}
	// Build the target form first, so the no-op check compares the
	// exact literals that would be installed.
	newOp := query.OpBetween
	var v, newLo, newHi dataset.Value
	switch {
	case math.IsInf(hi, 1):
		newOp, v = query.OpGe, lit(lo)
	case math.IsInf(lo, -1):
		newOp, v = query.OpLe, lit(hi)
	default:
		newLo, newHi = lit(lo), lit(hi)
	}
	if c.Op == newOp {
		same := false
		if newOp == query.OpBetween {
			same = sameValue(c.Lo, newLo) && sameValue(c.Hi, newHi)
		} else {
			same = sameValue(c.Value, v)
		}
		if same {
			return nil
		}
	}
	s.snapshot()
	// Drop the superseded range's cache entries so a continuous drag
	// does not pile one entry per intermediate position into the cache.
	s.cache.InvalidateCond(c)
	oldOp, oldLo, oldHi, oldV := c.Op, c.Lo, c.Hi, c.Value
	c.Op = newOp
	if newOp == query.OpBetween {
		c.Lo, c.Hi = newLo, newHi
	} else {
		c.Value = v
	}
	if err := s.maybeRecalc(); err != nil {
		// Failed recalculation: restore the condition in place (callers'
		// AST pointers stay valid) and drop the snapshot. Leaf vectors
		// the aborted run did finish stay cached under the new range's
		// key, so retrying the same drag resumes rather than restarts.
		c.Op, c.Lo, c.Hi, c.Value = oldOp, oldLo, oldHi, oldV
		s.popSnapshot()
		return err
	}
	return nil
}

// SetRangeByAttr finds the first condition on the named attribute and
// moves its range — the remote-protocol form of the slider drag, where
// a condition is addressed by attribute name instead of AST pointer
// (pointers do not travel over a wire, and they go stale across
// SetQuery/Undo anyway).
func (s *Session) SetRangeByAttr(attr string, lo, hi float64) error {
	c, err := s.FindCond(attr)
	if err != nil {
		return err
	}
	return s.SetRange(c, lo, hi)
}

// sameValue reports whether two literals are interchangeable in a
// condition: equal kind and equal numeric value (floats, ints, times,
// bools coerce through AsFloat) or equal string payload.
func sameValue(a, b dataset.Value) bool {
	if a.Kind != b.Kind || a.Null != b.Null {
		return false
	}
	if af, ok := a.AsFloat(); ok {
		bf, ok := b.AsFloat()
		return ok && af == bf
	}
	return a.S == b.S
}

// SetMedianDeviation moves a condition's range via the median-and-
// deviation slider of figure 4 ("a different type of slider where the
// medium value and some allowed deviation can be manipulated
// graphically"): the range becomes [median−dev, median+dev].
func (s *Session) SetMedianDeviation(c *query.Cond, median, dev float64) error {
	if dev < 0 || math.IsNaN(median) || math.IsNaN(dev) {
		return fmt.Errorf("session: invalid median/deviation %v ± %v", median, dev)
	}
	return s.SetRange(c, median-dev, median+dev)
}

// SetWeight updates a query part's weighting factor (section 5.2).
// Setting the weight the part already has (an unset weight reads as 1)
// is a no-op: no snapshot, no recalculation.
func (s *Session) SetWeight(e query.Expr, w float64) error {
	if w < 0 || math.IsNaN(w) {
		return fmt.Errorf("session: invalid weight %v", w)
	}
	if e.Weight() == w {
		return nil
	}
	old := e.Weight()
	s.snapshot()
	e.SetWeight(w)
	if err := s.maybeRecalc(); err != nil {
		e.SetWeight(old)
		s.popSnapshot()
		return err
	}
	return nil
}

// SetPercentDisplayed fixes the displayed fraction (the overall-result
// slider of figure 5). Note the paper's warning: "changing the
// percentage of data being displayed may completely change the
// visualization since the distance values are normalized according to
// the new range".
func (s *Session) SetPercentDisplayed(pct float64) error {
	if pct < 0 || pct > 1 || math.IsNaN(pct) {
		return fmt.Errorf("session: invalid percentage %v", pct)
	}
	old := s.opt.PercentDisplayed
	s.opt.PercentDisplayed = pct
	if err := s.maybeRecalc(); err != nil {
		s.opt.PercentDisplayed = old
		return err
	}
	return nil
}

// Select marks the data item at a window cell as the selected tuple; it
// is highlighted in all windows and its attribute values become
// available via SelectedTuple. Selecting an empty cell clears the
// selection.
func (s *Session) Select(cell arrange.Point) {
	if item, ok := s.res.ItemAt(cell); ok {
		s.selectedItem = item
	} else {
		s.selectedItem = -1
	}
}

// SelectItem selects a data item directly by index.
func (s *Session) SelectItem(item int) error {
	if item < 0 || item >= s.res.N {
		return fmt.Errorf("session: item %d out of range", item)
	}
	s.selectedItem = item
	return nil
}

// ClearSelection drops the tuple selection.
func (s *Session) ClearSelection() { s.selectedItem = -1 }

// SelectedItem returns the selected item index, or -1.
func (s *Session) SelectedItem() int { return s.selectedItem }

// SelectedTuple returns the attribute values of the selected tuple.
func (s *Session) SelectedTuple() (core.SelectedTuple, bool) {
	if s.selectedItem < 0 {
		return core.SelectedTuple{}, false
	}
	tup, err := s.res.Tuple(s.selectedItem)
	if err != nil {
		return core.SelectedTuple{}, false
	}
	return tup, true
}

// ProjectColorRange restricts the display to items whose color for the
// given query part lies within [loLevel, hiLevel] — "to focus on sets
// of data items with a specific color ... in the other visualizations
// the same data items are displayed" (section 4.3). A nil expression
// projects on the overall result's colors.
func (s *Session) ProjectColorRange(e query.Expr, loLevel, hiLevel int) error {
	if _, err := s.res.ItemsInColorRange(e, loLevel, hiLevel); err != nil {
		return err
	}
	s.projExpr, s.projLo, s.projHi, s.hasProj = e, loLevel, hiLevel, true
	return nil
}

// ClearProjection removes the color-range projection.
func (s *Session) ClearProjection() { s.hasProj = false }

// Windows renders the current windows with the projection filter and
// selection highlight applied.
func (s *Session) Windows() ([]*render.Window, error) {
	parts := append([]query.Expr{nil}, query.Predicates(s.q.Where)...)
	var keep map[int]bool
	if s.hasProj {
		items, err := s.res.ItemsInColorRange(s.projExpr, s.projLo, s.projHi)
		if err != nil {
			return nil, err
		}
		keep = make(map[int]bool, len(items))
		for _, it := range items {
			keep[it] = true
		}
	}
	out := make([]*render.Window, 0, len(parts))
	for _, p := range parts {
		w, err := s.buildWindow(p, keep)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// buildWindow renders one window (p == nil means the overall result)
// honoring projection and highlighting.
func (s *Session) buildWindow(p query.Expr, keep map[int]bool) (*render.Window, error) {
	opt := s.res.Engine.Options()
	title := "overall result"
	if p != nil {
		title = p.Label()
	}
	w := render.NewWindow(title, opt.GridW, opt.GridH, arrange.BlockSide(opt.PixelsPerItem))
	for rank := 0; rank < s.res.Displayed; rank++ {
		item := s.res.Order[rank]
		if keep != nil && !keep[item] {
			continue
		}
		cell := s.res.CellOfRank(rank)
		if cell == arrange.Unplaced {
			continue
		}
		var norm float64
		if p == nil {
			// The overall window's distances come straight from the
			// ranked prefix — the rank-before-scale path never needs the
			// full combined vector for display.
			norm = s.res.DistanceOfRank(rank)
		} else {
			var err error
			norm, err = s.res.NormOf(p, item)
			if err != nil {
				return nil, err
			}
		}
		w.SetCell(cell, s.res.ColorFor(norm))
	}
	if s.selectedItem >= 0 {
		if cell, ok := s.res.CellOfItem(s.selectedItem); ok {
			w.Highlight(cell)
		}
	}
	return w, nil
}

// Image composes the current windows plus the query-modification
// sliders into one picture — the full figure-4 layout.
func (s *Session) Image(cols int) (*render.Image, error) {
	ws, err := s.Windows()
	if err != nil {
		return nil, err
	}
	vis := render.Compose(ws, cols, 6)
	sliders := render.Sliders(s.res.SliderSpecs(), 140, 10)
	return render.SideBySide(vis, sliders, 10), nil
}

// DrillDown opens the figure-5 interaction: windows for a sub-part of
// the query, either keeping the overall arrangement or re-arranged
// independently.
func (s *Session) DrillDown(e query.Expr, independent bool) ([]*render.Window, error) {
	return s.res.DrillDownWindows(e, independent)
}

// PanelText renders the stats panel of figures 4/5 as text: overall
// counts plus the per-predicate slider fields.
func (s *Session) PanelText() string {
	var b strings.Builder
	st := s.res.Stats()
	fmt.Fprintf(&b, "# objects    %d\n", st.NumObjects)
	fmt.Fprintf(&b, "# displayed  %d\n", st.NumDisplayed)
	fmt.Fprintf(&b, "%% displayed  %.1f\n", st.PctDisplayed*100)
	fmt.Fprintf(&b, "# of results %d\n", st.NumResults)
	if s.dirty {
		b.WriteString("(stale: auto recalculate off)\n")
	}
	for _, info := range s.res.PredicateInfos() {
		fmt.Fprintf(&b, "\n[%s]  weight %.3g  results %d\n", info.Label, info.Weight, info.NumResults)
		if info.Numeric {
			fmt.Fprintf(&b, "  db range    %.4g .. %.4g\n", info.MinDB, info.MaxDB)
			fmt.Fprintf(&b, "  displayed   %.4g .. %.4g\n", info.FirstDisplayed, info.LastDisplayed)
			fmt.Fprintf(&b, "  query range %.4g .. %.4g\n", info.QueryLo, info.QueryHi)
		}
	}
	if tup, ok := s.SelectedTuple(); ok {
		b.WriteString("\nselected tuple:\n")
		for i, tbl := range tup.Tables {
			fmt.Fprintf(&b, "  %s: ", tbl)
			for j, v := range tup.Rows[i] {
				if j > 0 {
					b.WriteString(", ")
				}
				b.WriteString(v.String())
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
