package session

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/core"
)

// snap captures the externally observable session state a failed
// operation must leave untouched.
type sessionSnap struct {
	query   string
	recalcs int
	history int
	res     *core.Result
	dirty   bool
}

func snapOf(s *Session) sessionSnap {
	return sessionSnap{
		query:   s.Query().String(),
		recalcs: s.Recalcs,
		history: len(s.history),
		res:     s.Result(),
		dirty:   s.Dirty(),
	}
}

func checkUnchanged(t *testing.T, s *Session, want sessionSnap) {
	t.Helper()
	got := snapOf(s)
	if got != want {
		t.Fatalf("session state changed across failed op:\n got %+v\nwant %+v", got, want)
	}
}

// canceledCtx returns a context that is already done, so the engine's
// first cancellation checkpoint trips deterministically.
func canceledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestCanceledRecalcRollsBackRange(t *testing.T) {
	s := newSession(t)
	c, err := s.FindCond("x")
	if err != nil {
		t.Fatal(err)
	}
	want := snapOf(s)

	s.SetRunContext(canceledCtx())
	err = s.SetRange(c, 5, math.Inf(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	checkUnchanged(t, s, want)

	// The retry path: clearing the context and repeating the drag must
	// succeed and match a fresh session bit for bit.
	s.SetRunContext(nil)
	if err := s.SetRange(c, 5, math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewSQL(testCatalog(t), nil, core.Options{GridW: 8, GridH: 8},
		`SELECT x FROM T WHERE x >= 5 AND y > 10`)
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.Result(), fresh.Result()
	if a.Displayed != b.Displayed {
		t.Fatalf("displayed %d != %d", a.Displayed, b.Displayed)
	}
	for i := 0; i < a.Displayed; i++ {
		if a.Order[i] != b.Order[i] || a.DistanceOfRank(i) != b.DistanceOfRank(i) {
			t.Fatalf("rank %d: (%d,%v) != (%d,%v)", i,
				a.Order[i], a.DistanceOfRank(i), b.Order[i], b.DistanceOfRank(i))
		}
	}
}

func TestCanceledRecalcRollsBackQueryAndWeightAndUndo(t *testing.T) {
	s := newSession(t)
	c, err := s.FindCond("x")
	if err != nil {
		t.Fatal(err)
	}
	// Build one undoable step first so Undo has something to revert.
	if err := s.SetRange(c, 5, math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	want := snapOf(s)
	s.SetRunContext(canceledCtx())

	if err := s.SetQuery(`SELECT x FROM T WHERE y <= 3`); !errors.Is(err, context.Canceled) {
		t.Fatalf("SetQuery: want context.Canceled, got %v", err)
	}
	checkUnchanged(t, s, want)

	if err := s.SetWeight(s.Query().Where, 2.5); !errors.Is(err, context.Canceled) {
		t.Fatalf("SetWeight: want context.Canceled, got %v", err)
	}
	checkUnchanged(t, s, want)
	if w := s.Query().Where.Weight(); w != 1 {
		t.Fatalf("weight not rolled back: %v", w)
	}

	if err := s.Undo(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Undo: want context.Canceled, got %v", err)
	}
	checkUnchanged(t, s, want)

	if err := s.SetPercentDisplayed(0.5); !errors.Is(err, context.Canceled) {
		t.Fatalf("SetPercentDisplayed: want context.Canceled, got %v", err)
	}
	checkUnchanged(t, s, want)

	// After clearing the context every rolled-back operation works
	// again, and the undo reverts the range drag as if the failed
	// attempts never happened.
	s.SetRunContext(nil)
	if err := s.Undo(); err != nil {
		t.Fatal(err)
	}
	if got := s.Query().String(); got != want.query {
		// Undo reverted the SetRange, so the query must differ from the
		// post-drag form and match the original.
		orig := newSession(t)
		if got != orig.Query().String() {
			t.Fatalf("undo restored %q", got)
		}
	}
}

func TestDeadlineErrorIsTyped(t *testing.T) {
	s := newSession(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(1, 0))
	defer cancel()
	s.SetRunContext(ctx)
	err := s.SetPercentDisplayed(0.25)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	s.SetRunContext(nil)
	if err := s.SetPercentDisplayed(0.25); err != nil {
		t.Fatal(err)
	}
}
