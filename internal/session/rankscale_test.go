package session

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/relevance"
)

// rankScaleCatalog builds a catalog adversarial to rank-before-scale:
// values quantized onto a handful of levels (mass duplicate ties in
// both raw and scaled space), values parked exactly on strict-operator
// boundaries (clamp-boundary flips under range drags), NULLs (NaN
// distances), and enough rows that the evaluator spans many chunks
// (block pruning has something to skip).
func rankScaleCatalog(t testing.TB, n int) *dataset.Catalog {
	t.Helper()
	tbl, err := dataset.NewTable("S", dataset.Schema{
		{Name: "a", Kind: dataset.KindFloat},
		{Name: "b", Kind: dataset.KindFloat},
		{Name: "c", Kind: dataset.KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		a := rng.Float64() * 100
		switch i % 5 {
		case 0:
			a = float64(10 * rng.Intn(11)) // heavy duplicates
		case 1:
			a = 50 // strict-boundary mass
		}
		bv := dataset.Float(rng.Float64() * 100)
		if i%53 == 0 {
			bv = dataset.Null(dataset.KindFloat) // NaN distances
		}
		c := rng.Float64() * 100
		if i%7 == 0 {
			c = 25 // exact answers in bulk for `c BETWEEN 20 AND 30`
		}
		if err := tbl.AppendRow(dataset.Float(a), bv, dataset.Float(c)); err != nil {
			t.Fatal(err)
		}
	}
	cat := dataset.NewCatalog()
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	return cat
}

// matchesFullSort compares the session's (rank-before-scale, possibly
// block-pruned) result against a fresh FullSort engine: displayed rows,
// their order, the scaled distances at every rank, the relevances, and
// the fully materialized combined vector must all be bit-identical.
func matchesFullSort(step string, s *Session, cat *dataset.Catalog, opt core.Options) error {
	fopt := opt
	fopt.FullSort = true
	fresh, err := core.New(cat, nil, fopt).Run(s.Query())
	if err != nil {
		return fmt.Errorf("%s: full-sort run: %v", step, err)
	}
	got := s.Result()
	if got.Displayed != fresh.Displayed {
		return fmt.Errorf("%s: Displayed %d vs %d", step, got.Displayed, fresh.Displayed)
	}
	for rank := 0; rank < fresh.Displayed; rank++ {
		if got.Order[rank] != fresh.Order[rank] {
			return fmt.Errorf("%s: order[%d] = %d, want %d", step, rank, got.Order[rank], fresh.Order[rank])
		}
		a, b := got.DistanceOfRank(rank), fresh.DistanceOfRank(rank)
		if math.Float64bits(a) != math.Float64bits(b) {
			return fmt.Errorf("%s: distance[%d] = %v, want %v", step, rank, a, b)
		}
	}
	gc, fc := got.Combined(), fresh.Combined()
	for i := range fc {
		x, y := gc[i], fc[i]
		if math.Float64bits(x) != math.Float64bits(y) && !(math.IsNaN(x) && math.IsNaN(y)) {
			return fmt.Errorf("%s: combined[%d] = %v, want %v", step, i, x, y)
		}
	}
	gr, fr := got.Relevance(), fresh.Relevance()
	for i := range fr {
		if math.Float64bits(gr[i]) != math.Float64bits(fr[i]) {
			return fmt.Errorf("%s: relevance[%d] = %v, want %v", step, i, gr[i], fr[i])
		}
	}
	if got.Stats() != fresh.Stats() {
		return fmt.Errorf("%s: stats %+v vs %+v", step, got.Stats(), fresh.Stats())
	}
	return nil
}

// TestRankBeforeScaleMatchesFullSortScript is the tentpole identity
// property of the rank-before-scale pipeline: a randomized interaction
// script — clamp-boundary range drags, integer and fractional weight
// changes, undos, percent-displayed moves — on a cached session (raw
// ranking, threshold carry-over, block pruning) stays bit-identical to
// Options.FullSort at every step, across every combiner mode.
func TestRankBeforeScaleMatchesFullSortScript(t *testing.T) {
	const n = 20000
	cat := rankScaleCatalog(t, n)
	modes := []struct {
		name string
		opt  core.Options
	}{
		{"and-arith-or-geo", core.Options{GridW: 16, GridH: 16}},
		{"paper-raw", core.Options{GridW: 16, GridH: 16, Mode: relevance.PaperRaw}},
		{"euclidean", core.Options{GridW: 16, GridH: 16, And: relevance.ANDEuclidean}},
		{"lp2", core.Options{GridW: 16, GridH: 16, And: relevance.ANDLp, LpP: 2}},
		{"lp3.5", core.Options{GridW: 16, GridH: 16, And: relevance.ANDLp, LpP: 3.5}},
	}
	queries := []string{
		// OR root: the geometric root is the deferred transform.
		`SELECT a FROM S WHERE a > 50 AND b < 40 OR c BETWEEN 20 AND 30`,
		// AND root: deferred division (or Lp root, per mode).
		`SELECT a FROM S WHERE a > 50 WEIGHT 2 AND c BETWEEN 20 AND 30 AND b >= 25`,
		// Leaf root: identity transform, clamp ties only.
		`SELECT a FROM S WHERE c BETWEEN 20 AND 30`,
	}
	attrs := []string{"a", "b", "c"}
	for _, m := range modes {
		for qi, sql := range queries {
			t.Run(fmt.Sprintf("%s/q%d", m.name, qi), func(t *testing.T) {
				s, err := NewSQL(cat, nil, m.opt, sql)
				if err != nil {
					t.Fatal(err)
				}
				if err := matchesFullSort("initial", s, cat, m.opt); err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(int64(7*qi) + 1))
				for step := 0; step < 25; step++ {
					label := ""
					switch op := rng.Intn(10); {
					case op < 4:
						c, err := s.FindCond(attrs[rng.Intn(len(attrs))])
						if err != nil {
							continue
						}
						// Drag onto quantized values so clamp boundaries and
						// duplicate masses flip in and out of the range.
						lo := float64(10 * rng.Intn(8))
						hi := lo + float64(10*rng.Intn(5))
						if err := s.SetRange(c, lo, hi); err != nil {
							t.Fatal(err)
						}
						label = fmt.Sprintf("step %d: range [%v,%v]", step, lo, hi)
					case op < 8:
						preds := query.Predicates(s.Query().Where)
						w := []float64{0.5, 1, 1.5, 2, 3}[rng.Intn(5)]
						if err := s.SetWeight(preds[rng.Intn(len(preds))], w); err != nil {
							t.Fatal(err)
						}
						label = fmt.Sprintf("step %d: weight %v", step, w)
					case op < 9:
						if !s.CanUndo() {
							continue
						}
						if err := s.Undo(); err != nil {
							t.Fatal(err)
						}
						label = fmt.Sprintf("step %d: undo", step)
					default:
						pct := []float64{0.001, 0.01, 0.05}[rng.Intn(3)]
						if err := s.SetPercentDisplayed(pct); err != nil {
							t.Fatal(err)
						}
						label = fmt.Sprintf("step %d: pct %v", step, pct)
					}
					if err := matchesFullSort(label, s, cat, s.opt); err != nil {
						t.Fatal(err)
					}
				}
			})
		}
	}
}

// TestWarmRerunsPruneChunks: once the session cache has promoted the
// leaf chunk stats (first reuse), weight-only reruns on a selection
// saturated with exact answers must skip most of the root combine
// chunks — and stay bit-identical to FullSort while doing so.
func TestWarmRerunsPruneChunks(t *testing.T) {
	const n = 40000
	cat := rankScaleCatalog(t, n)
	opt := core.Options{GridW: 16, GridH: 16}
	sql := `SELECT a FROM S WHERE a >= 0 OR c BETWEEN 20 AND 30`
	s, err := NewSQL(cat, nil, opt, sql)
	if err != nil {
		t.Fatal(err)
	}
	pred := query.Predicates(s.Query().Where)[0]
	prunedTotal := 0
	for i := 0; i < 4; i++ {
		if err := s.SetWeight(pred, float64(2+i%2)); err != nil {
			t.Fatal(err)
		}
		tm := s.Result().Timings
		if tm.Chunks == 0 {
			t.Fatalf("rerun %d reports no chunks: %+v", i, tm)
		}
		prunedTotal += tm.Pruned
		if err := matchesFullSort(fmt.Sprintf("rerun %d", i), s, cat, opt); err != nil {
			t.Fatal(err)
		}
	}
	if prunedTotal == 0 {
		t.Fatal("warm reruns never pruned a chunk on a saturated selection")
	}
}

// TestRangeEditClearsThresholdSeed: a range drag perturbs the leaf the
// carried-over pruning threshold was derived from; the seed must be
// cleared (the rerun still prunes once its own threshold tightens, and
// stays exact either way).
func TestRangeEditClearsThresholdSeed(t *testing.T) {
	const n = 30000
	cat := rankScaleCatalog(t, n)
	opt := core.Options{GridW: 16, GridH: 16}
	s, err := NewSQL(cat, nil, opt, `SELECT a FROM S WHERE a > 50 AND b < 40 OR c BETWEEN 20 AND 30`)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: weight rerun carries a threshold.
	pred := query.Predicates(s.Query().Where)[0]
	if err := s.SetWeight(pred, 2); err != nil {
		t.Fatal(err)
	}
	c, err := s.FindCond("c")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.SetRange(c, float64(10+i), float64(40+i)); err != nil {
			t.Fatal(err)
		}
		if err := matchesFullSort(fmt.Sprintf("drag %d", i), s, cat, opt); err != nil {
			t.Fatal(err)
		}
	}
}
