package session

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/query"
)

// TestNoopSetWeightSkipsRecalc: dragging a weight slider to the value
// it already has must not snapshot or recompute (it used to do both).
func TestNoopSetWeightSkipsRecalc(t *testing.T) {
	s := newSession(t)
	pred := query.Predicates(s.Query().Where)[0]
	if err := s.SetWeight(pred, 2); err != nil {
		t.Fatal(err)
	}
	recalcs, undos := s.Recalcs, len(s.history)
	if err := s.SetWeight(pred, 2); err != nil {
		t.Fatal(err)
	}
	if s.Recalcs != recalcs || len(s.history) != undos {
		t.Fatalf("no-op SetWeight recomputed: recalcs %d→%d, history %d→%d",
			recalcs, s.Recalcs, undos, len(s.history))
	}
	// The implicit default: a part with no explicit weight reads as 1,
	// so setting 1 is also a no-op.
	other := query.Predicates(s.Query().Where)[1]
	recalcs = s.Recalcs
	if err := s.SetWeight(other, 1); err != nil {
		t.Fatal(err)
	}
	if s.Recalcs != recalcs {
		t.Fatal("SetWeight(1) on an unweighted part recomputed")
	}
}

// TestNoopSetRangeSkipsRecalc: a slider drag that lands on the current
// range must not snapshot or recompute, in all three range forms.
func TestNoopSetRangeSkipsRecalc(t *testing.T) {
	s := newSession(t)
	c, err := s.FindCond("x")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]float64{
		{2, 5},            // BETWEEN
		{3, math.Inf(1)},  // >=
		{math.Inf(-1), 7}, // <=
	} {
		if err := s.SetRange(c, r[0], r[1]); err != nil {
			t.Fatal(err)
		}
		recalcs, undos := s.Recalcs, len(s.history)
		if err := s.SetRange(c, r[0], r[1]); err != nil {
			t.Fatal(err)
		}
		if s.Recalcs != recalcs || len(s.history) != undos {
			t.Fatalf("no-op drag to %v recomputed: recalcs %d→%d, history %d→%d",
				r, recalcs, s.Recalcs, undos, len(s.history))
		}
	}
}

// TestSessionRerunsHitCache: the session's recalculations attribute
// their leaf reuse in StageTimings — a weight change hits every leaf, a
// single-slider drag misses exactly one.
func TestSessionRerunsHitCache(t *testing.T) {
	s := newSession(t) // x > 15 AND y > 10: two leaves
	pred := query.Predicates(s.Query().Where)[0]
	if err := s.SetWeight(pred, 2.5); err != nil {
		t.Fatal(err)
	}
	tm := s.Result().Timings
	if tm.CacheHits != 2 || tm.CacheMisses != 0 {
		t.Fatalf("weight rerun: hits=%d misses=%d", tm.CacheHits, tm.CacheMisses)
	}
	c, err := s.FindCond("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetRange(c, 5, math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	tm = s.Result().Timings
	if tm.CacheHits != 1 || tm.CacheMisses != 1 {
		t.Fatalf("slider rerun: hits=%d misses=%d", tm.CacheHits, tm.CacheMisses)
	}
}

// interactionCatalog builds a catalog big enough that normalization
// ranges, display cuts and rankings all do real work.
func interactionCatalog(t *testing.T, n int) *dataset.Catalog {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	tbl, err := dataset.NewTable("S", dataset.Schema{
		{Name: "a", Kind: dataset.KindFloat},
		{Name: "b", Kind: dataset.KindFloat},
		{Name: "c", Kind: dataset.KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		vals := []dataset.Value{
			dataset.Float(rng.Float64() * 100),
			dataset.Float(rng.Float64() * 100),
			dataset.Float(rng.Float64() * 100),
		}
		if rng.Float64() < 0.02 {
			vals[rng.Intn(3)] = dataset.Null(dataset.KindFloat)
		}
		if err := tbl.AppendRow(vals...); err != nil {
			t.Fatal(err)
		}
	}
	cat := dataset.NewCatalog()
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	return cat
}

// sameAsFresh asserts the cached session's current result is
// bit-identical to a cold engine run of the same query with the same
// options: combined distances, display count, order prefix and every
// predicate window vector.
func sameAsFresh(t *testing.T, step string, s *Session, cat *dataset.Catalog, opt core.Options) {
	t.Helper()
	if err := freshMismatch(step, s, cat, opt); err != nil {
		t.Fatal(err)
	}
}

// freshMismatch is sameAsFresh as a plain error — the concurrency
// stress test runs it from worker goroutines, which must not call
// t.Fatal.
func freshMismatch(step string, s *Session, cat *dataset.Catalog, opt core.Options) error {
	fresh, err := core.New(cat, nil, opt).Run(s.Query())
	if err != nil {
		return fmt.Errorf("%s: fresh run: %v", step, err)
	}
	got := s.Result()
	if got.N != fresh.N || got.Displayed != fresh.Displayed {
		return fmt.Errorf("%s: N %d vs %d, Displayed %d vs %d", step, got.N, fresh.N, got.Displayed, fresh.Displayed)
	}
	gc, fc := got.Combined(), fresh.Combined()
	for i := range fc {
		x, y := gc[i], fc[i]
		if math.Float64bits(x) != math.Float64bits(y) && !(math.IsNaN(x) && math.IsNaN(y)) {
			return fmt.Errorf("%s: combined[%d] %v vs %v", step, i, x, y)
		}
	}
	for rank := 0; rank < fresh.Displayed; rank++ {
		if got.Order[rank] != fresh.Order[rank] {
			return fmt.Errorf("%s: order[%d] %d vs %d", step, rank, got.Order[rank], fresh.Order[rank])
		}
	}
	preds := query.Predicates(s.Query().Where)
	for pi, p := range preds {
		for i := 0; i < fresh.N; i++ {
			x, errA := got.NormOf(p, i)
			y, errB := fresh.NormOf(p, i)
			if (errA == nil) != (errB == nil) {
				return fmt.Errorf("%s: NormOf error mismatch on predicate %d", step, pi)
			}
			if errA != nil {
				break
			}
			if math.Float64bits(x) != math.Float64bits(y) && !(math.IsNaN(x) && math.IsNaN(y)) {
				return fmt.Errorf("%s: predicate %d item %d: %v vs %v", step, pi, i, x, y)
			}
		}
	}
	return nil
}

// TestInteractionScriptMatchesFreshEngine is the tentpole identity
// property: a randomized interaction script — range drags (including
// no-op jitter), weight changes, percent-displayed moves and undos —
// on a cached session produces, at every step, results bit-identical
// to a fresh engine run of the current query.
func TestInteractionScriptMatchesFreshEngine(t *testing.T) {
	const n = 800
	cat := interactionCatalog(t, n)
	opt := core.Options{GridW: 16, GridH: 16}
	s, err := NewSQL(cat, nil, opt,
		`SELECT a FROM S WHERE a > 50 AND b < 40 OR c BETWEEN 20 AND 30 WEIGHT 2`)
	if err != nil {
		t.Fatal(err)
	}
	sameAsFresh(t, "initial", s, cat, opt)
	rng := rand.New(rand.NewSource(1994))
	attrs := []string{"a", "b", "c"}
	for step := 0; step < 60; step++ {
		label := ""
		switch op := rng.Intn(10); {
		case op < 4: // range drag
			attr := attrs[rng.Intn(len(attrs))]
			c, err := s.FindCond(attr)
			if err != nil {
				t.Fatal(err)
			}
			lo := math.Floor(rng.Float64() * 80)
			hi := lo + math.Floor(rng.Float64()*40)
			switch rng.Intn(3) {
			case 0:
				err = s.SetRange(c, lo, math.Inf(1))
			case 1:
				err = s.SetRange(c, math.Inf(-1), hi)
			default:
				err = s.SetRange(c, lo, hi)
			}
			if err != nil {
				t.Fatal(err)
			}
			label = fmt.Sprintf("step %d: drag %s to [%g,%g]", step, attr, lo, hi)
		case op < 7: // weight change (sometimes a no-op)
			preds := query.Predicates(s.Query().Where)
			p := preds[rng.Intn(len(preds))]
			w := []float64{0.5, 1, 1, 2, 3}[rng.Intn(5)]
			if err := s.SetWeight(p, w); err != nil {
				t.Fatal(err)
			}
			label = fmt.Sprintf("step %d: weight %g", step, w)
		case op < 8: // percent-displayed slider
			pct := []float64{0, 0.1, 0.5, 1}[rng.Intn(4)]
			if err := s.SetPercentDisplayed(pct); err != nil {
				t.Fatal(err)
			}
			opt.PercentDisplayed = pct
			label = fmt.Sprintf("step %d: pct %g", step, pct)
		default: // undo
			if !s.CanUndo() {
				continue
			}
			if err := s.Undo(); err != nil {
				t.Fatal(err)
			}
			// Undo restores the query but not option state; mirror the
			// session's current option for the fresh comparison run.
			label = fmt.Sprintf("step %d: undo", step)
		}
		sameAsFresh(t, label, s, cat, opt)
	}
}
