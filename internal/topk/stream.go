package topk

import (
	"math"
	"sort"
)

// This file holds the threshold-seeded streaming selection behind the
// rank-before-scale pipeline: the engine ranks raw (pre-scaled)
// combined distances, so the selection must (a) run as a stream the
// chunk-fused evaluator can feed while it skips provably-hopeless
// chunks, (b) accept a seed threshold carried over from the previous
// recalculation of a slider drag, and (c) expose the exact
// lexicographic (value, index) cut the clamp-tie resolution needs.

// Cand is one candidate of a streaming selection: a distance value and
// the item index it belongs to. The ordering over candidates is
// lexicographic — by value ascending, ties by index ascending — which
// matches the package's total order on NaN-free inputs.
type Cand struct {
	V float64
	I int
}

// lexLess orders (v1,i1) before (v2,i2): value ascending, index
// tiebreak. Inputs must be NaN-free.
func lexLess(v1 float64, i1 int, v2 float64, i2 int) bool {
	return v1 < v2 || (v1 == v2 && i1 < i2)
}

// StreamSelector collects the k lexicographically smallest (value,
// index) pairs of a stream in O(k) space. Offers beyond the current
// rejection bound are dropped; once k candidates are held the bound is
// the running k-th smallest pair, so a producer can skip whole blocks
// whose lower bound cannot beat it (block pruning).
//
// A seed bound (the previous recalculation's k-th value) activates
// rejection — and therefore block skipping — before k candidates have
// even been seen. A too-tight seed can starve the selection below k
// candidates; Finish reports that as incomplete and the caller re-runs
// unseeded (all block-skip decisions taken under a bound are only valid
// if the selection completes).
//
// The zero-ish invariants: candidates are unique by index, the bound
// never grows, and an element rejected at any point is ≥ (in lex order)
// the final k-th candidate — so the collected set always contains the
// true top-k of everything offered, when complete.
type StreamSelector struct {
	k     int
	cands []Cand
	// boundV/boundI is the lex rejection bound; boundI is MaxInt while
	// the bound is the (index-less) seed.
	boundV  float64
	boundI  int
	bounded bool
	// full marks the bound as derived from a collected k-th candidate
	// rather than the seed.
	full bool
}

// NewStreamSelector returns a selector of the k lex-smallest pairs.
// A NaN seed means unseeded; a non-NaN seed activates rejection (and
// block skipping) at (seed, +∞) immediately.
func NewStreamSelector(k int, seed float64) *StreamSelector {
	if k < 1 {
		k = 1
	}
	s := &StreamSelector{k: k, boundI: math.MaxInt}
	if !math.IsNaN(seed) {
		s.boundV, s.bounded = seed, true
	}
	return s
}

// Bound returns the current lex rejection bound. ok is false while no
// bound is active (unseeded and fewer than k candidates compacted), in
// which case nothing may be skipped.
func (s *StreamSelector) Bound() (v float64, i int, ok bool) {
	return s.boundV, s.boundI, s.bounded
}

// Offer considers (v, i). NaN values are ignored (NaN distances rank
// after every candidate and are resolved by the caller's tie fill).
func (s *StreamSelector) Offer(v float64, i int) {
	if math.IsNaN(v) {
		return
	}
	if s.bounded && !lexLess(v, i, s.boundV, s.boundI) {
		return
	}
	s.cands = append(s.cands, Cand{V: v, I: i})
	if len(s.cands) >= s.trigger() {
		s.compact()
	}
}

// OfferSlice streams a chunk of values whose indices are base, base+1,
// ... — the fused evaluator's per-chunk feed. It hoists the bound
// check out of the per-element path.
func (s *StreamSelector) OfferSlice(vals []float64, base int) {
	bv, bi, bounded := s.boundV, s.boundI, s.bounded
	for off, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		i := base + off
		if bounded && !lexLess(v, i, bv, bi) {
			continue
		}
		s.cands = append(s.cands, Cand{V: v, I: i})
		if len(s.cands) >= s.trigger() {
			s.compact()
			bv, bi, bounded = s.boundV, s.boundI, s.bounded
		}
	}
}

// trigger is the buffer length that forces a compaction: enough slack
// past k that compaction cost amortizes to O(1) per offer.
func (s *StreamSelector) trigger() int {
	t := 2 * s.k
	if t < 64 {
		t = 64
	}
	return t
}

// compact reduces the buffer to the k lex-smallest candidates and
// tightens the bound to the k-th. (value, index) keys are distinct, so
// exactly k survive.
func (s *StreamSelector) compact() {
	if len(s.cands) <= s.k {
		return
	}
	kth := selectCandLex(s.cands, s.k)
	// Partition kept ≤ kth to the front (selectCandLex already did).
	s.cands = s.cands[:s.k]
	s.boundV, s.boundI, s.bounded, s.full = kth.V, kth.I, true, true
}

// Finish returns the collected candidates (unsorted), the k-th
// lex-smallest pair, and whether the selection completed (k candidates
// collected). Incomplete selections happen when fewer than k
// comparable values were offered — or when a seed rejected too much;
// the caller distinguishes the two by whether it skipped anything.
func (s *StreamSelector) Finish() (cands []Cand, kth Cand, complete bool) {
	s.compact()
	if len(s.cands) < s.k {
		return s.cands, Cand{V: math.NaN(), I: -1}, false
	}
	if !s.full {
		kth = selectCandLex(s.cands, s.k)
		s.boundV, s.boundI, s.bounded, s.full = kth.V, kth.I, true, true
	}
	return s.cands, Cand{V: s.boundV, I: s.boundI}, true
}

// selectCandLex partially sorts cands so cands[:k] are the k
// lex-smallest and returns the k-th (largest of the kept). Expected
// O(len) quickselect; keys are distinct so it cannot degenerate.
func selectCandLex(cands []Cand, k int) Cand {
	lo, hi := 0, len(cands)
	for hi-lo > 16 {
		// Median-of-three pivot.
		mid := lo + (hi-lo)/2
		if candLess(cands[mid], cands[lo]) {
			cands[mid], cands[lo] = cands[lo], cands[mid]
		}
		if candLess(cands[hi-1], cands[mid]) {
			cands[hi-1], cands[mid] = cands[mid], cands[hi-1]
			if candLess(cands[mid], cands[lo]) {
				cands[mid], cands[lo] = cands[lo], cands[mid]
			}
		}
		cands[mid], cands[hi-1] = cands[hi-1], cands[mid]
		pv := cands[hi-1]
		store := lo
		for i := lo; i < hi-1; i++ {
			if candLess(cands[i], pv) {
				cands[i], cands[store] = cands[store], cands[i]
				store++
			}
		}
		cands[store], cands[hi-1] = cands[hi-1], cands[store]
		switch {
		case store < k-1:
			lo = store + 1
		case store > k-1:
			hi = store
		default:
			return cands[k-1]
		}
	}
	sub := cands[lo:hi]
	sort.Slice(sub, func(a, b int) bool { return candLess(sub[a], sub[b]) })
	return cands[k-1]
}

func candLess(a, b Cand) bool { return lexLess(a.V, a.I, b.V, b.I) }

// --- Monotone preimage search -----------------------------------------

// ordOf maps a float64 onto a uint64 whose unsigned order matches the
// float order from -Inf to +Inf (the standard total-order bit trick).
// NaNs are excluded by the callers.
func ordOf(f float64) uint64 {
	b := math.Float64bits(f)
	if b>>63 != 0 {
		return ^b
	}
	return b | (1 << 63)
}

// floatOf inverts ordOf.
func floatOf(k uint64) float64 {
	if k>>63 != 0 {
		return math.Float64frombits(k &^ (1 << 63))
	}
	return math.Float64frombits(^k)
}

// SupWhere returns the largest x in [lo, hi] (endpoints included, ±Inf
// allowed) with pred(x) true, assuming pred is monotone non-increasing
// over the interval (true on a prefix, false beyond). It returns NaN
// when pred(lo) is already false. The search bisects the float64 bit
// space, so it is exact: SupWhere(p, lo, hi) is the last representable
// value satisfying p.
//
// This is the clamp-tie resolver of the rank-before-scale pipeline:
// with pred(x) = "scaled(x) ≤ s" (or "< s") over a monotone scaling
// transform, SupWhere yields the exact raw-domain boundary of the tie
// class that scales to s.
func SupWhere(pred func(float64) bool, lo, hi float64) float64 {
	if !pred(lo) {
		return math.NaN()
	}
	if pred(hi) {
		return hi
	}
	// Invariant: pred(floatOf(l)) true, pred(floatOf(h)) false.
	l, h := ordOf(lo), ordOf(hi)
	for h-l > 1 {
		m := l + (h-l)/2
		if pred(floatOf(m)) {
			l = m
		} else {
			h = m
		}
	}
	return floatOf(l)
}
