package topk_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/reduce"
	"repro/internal/topk"
)

// randomDists generates adversarial inputs: duplicates, NaNs, ±Inf,
// signed zeros and plain random values.
func randomDists(rng *rand.Rand, n int) []float64 {
	d := make([]float64, n)
	for i := range d {
		switch rng.Intn(12) {
		case 0:
			d[i] = math.NaN()
		case 1:
			d[i] = math.Inf(1)
		case 2:
			d[i] = math.Inf(-1)
		case 3:
			d[i] = 0
		case 4:
			d[i] = math.Copysign(0, -1)
		case 5, 6, 7:
			d[i] = float64(rng.Intn(5)) // heavy duplicates
		default:
			d[i] = rng.NormFloat64() * 100
		}
	}
	return d
}

func sameFloat(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// Property: SelectKWithIndex agrees with reduce.SortWithIndex on the
// first k entries — values and indices — for any k, including inputs
// with NaN, ±Inf and duplicate distances.
func TestSelectKWithIndexMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300)
		dists := randomDists(rng, n)
		k := rng.Intn(n + 2) // occasionally k > n
		orig := append([]float64(nil), dists...)

		sorted, sortIdx := reduce.SortWithIndex(dists)
		vals, idx := topk.SelectKWithIndex(dists, k)

		for i, v := range dists { // input must be untouched
			if !sameFloat(v, orig[i]) {
				t.Fatalf("trial %d: input mutated at %d", trial, i)
			}
		}
		if len(vals) != n || len(idx) != n {
			t.Fatalf("trial %d: got lengths %d/%d, want %d", trial, len(vals), len(idx), n)
		}
		kk := k
		if kk > n {
			kk = n
		}
		for i := 0; i < kk; i++ {
			if idx[i] != sortIdx[i] {
				t.Fatalf("trial %d (n=%d k=%d): idx[%d] = %d, sort gives %d",
					trial, n, k, i, idx[i], sortIdx[i])
			}
			if !sameFloat(vals[i], sorted[i]) {
				t.Fatalf("trial %d: vals[%d] = %v, sort gives %v", trial, i, vals[i], sorted[i])
			}
		}
		// The remainder must still be a permutation of [0, n).
		seen := make([]bool, n)
		for _, j := range idx {
			if j < 0 || j >= n || seen[j] {
				t.Fatalf("trial %d: idx is not a permutation", trial)
			}
			seen[j] = true
			if !sameFloat(vals[0], dists[idx[0]]) {
				t.Fatalf("trial %d: vals disagree with permutation", trial)
			}
		}
		for i := range vals {
			if !sameFloat(vals[i], dists[idx[i]]) {
				t.Fatalf("trial %d: vals[%d] != dists[idx[%d]]", trial, i, i)
			}
		}
	}
}

// Property: SelectK equals the sorted prefix.
func TestSelectKMatchesSortedPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(200)
		dists := randomDists(rng, n)
		k := rng.Intn(n + 2)
		sorted, _ := reduce.SortWithIndex(dists)
		got := topk.SelectK(dists, k)
		kk := k
		if kk > n {
			kk = n
		}
		if len(got) != kk {
			t.Fatalf("trial %d: len %d, want %d", trial, len(got), kk)
		}
		for i := range got {
			if !sameFloat(got[i], sorted[i]) {
				t.Fatalf("trial %d: SelectK[%d] = %v, want %v", trial, i, got[i], sorted[i])
			}
		}
	}
}

// Property: Threshold returns exactly sorted[k-1].
func TestThresholdMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(250)
		dists := randomDists(rng, n)
		k := 1 + rng.Intn(n)
		sorted, _ := reduce.SortWithIndex(dists)
		got := topk.Threshold(append([]float64(nil), dists...), k)
		if !sameFloat(got, sorted[k-1]) {
			t.Fatalf("trial %d (n=%d k=%d): Threshold = %v, want %v", trial, n, k, got, sorted[k-1])
		}
	}
}

func TestThresholdEdgeCases(t *testing.T) {
	if !math.IsNaN(topk.Threshold(nil, 1)) {
		t.Fatal("empty slice must yield NaN")
	}
	if got := topk.Threshold([]float64{3}, 0); got != 3 {
		t.Fatalf("k clamps to 1: got %v", got)
	}
	if got := topk.Threshold([]float64{5, 1}, 99); got != 5 {
		t.Fatalf("k clamps to n: got %v", got)
	}
	allNaN := []float64{math.NaN(), math.NaN()}
	if !math.IsNaN(topk.Threshold(allNaN, 1)) {
		t.Fatal("all-NaN input must yield NaN")
	}
	mixed := []float64{math.NaN(), 2, math.Inf(-1)}
	if got := topk.Threshold(append([]float64(nil), mixed...), 2); got != 2 {
		t.Fatalf("NaNs sort last: got %v", got)
	}
	if got := topk.Threshold(append([]float64(nil), mixed...), 1); !math.IsInf(got, -1) {
		t.Fatalf("-Inf sorts first: got %v", got)
	}
	if got := topk.Threshold(append([]float64(nil), mixed...), 3); !math.IsNaN(got) {
		t.Fatal("third of [NaN 2 -Inf] is NaN")
	}
}

func TestSelectKZeroAndFull(t *testing.T) {
	dists := []float64{4, 2, math.NaN(), 1}
	if got := topk.SelectK(dists, 0); got != nil {
		t.Fatalf("k=0 must be nil, got %v", got)
	}
	full := topk.SelectK(dists, 10)
	want := []float64{1, 2, 4, math.NaN()}
	for i := range want {
		if !sameFloat(full[i], want[i]) {
			t.Fatalf("full selection mismatch at %d: %v vs %v", i, full[i], want[i])
		}
	}
	vals, idx := topk.SelectKWithIndex(dists, 2)
	if idx[0] != 3 || idx[1] != 1 || vals[0] != 1 || vals[1] != 2 {
		t.Fatalf("unexpected top-2: vals=%v idx=%v", vals[:2], idx[:2])
	}
}
