// Package topk provides selection-based partial ranking of distance
// vectors. The paper observes that "query processing time is dominated
// by the time needed for sorting", yet only GridW×GridH·(numPreds+1)
// distance values are ever displayed — so the engine does not need the
// full O(n log n) sort of the relevance ranking, only the k smallest
// values in order. This package supplies that with an expected-O(n)
// quickselect followed by an O(k log k) sort of the selected prefix.
//
// All functions use the same total order as reduce.SortWithIndex:
// ascending by value with -Inf smallest and +Inf largest, NaN
// (uncolorable) entries after every real value, and ties between equal
// values broken by the original index. Under that order the first k
// entries of a selection are bit-identical to the first k entries of
// the full stable sort, which the property tests in this package
// assert.
package topk

import (
	"math"
	"sort"
)

// less is the package's total order over entries of d: by value
// ascending with NaNs last, ties broken by index. It matches the
// ordering of reduce.SortWithIndex (a stable sort on values with NaNs
// pushed last orders equal values — and NaNs — by original index).
func less(d []float64, a, b int) bool {
	da, db := d[a], d[b]
	aNaN, bNaN := math.IsNaN(da), math.IsNaN(db)
	switch {
	case aNaN && bNaN:
		return a < b
	case aNaN:
		return false
	case bNaN:
		return true
	case da != db:
		return da < db
	default:
		return a < b
	}
}

// SelectKWithIndex returns a permutation idx of [0, len(dists)) and the
// permuted values vals (vals[i] = dists[idx[i]]) such that the first
// min(k, n) entries are exactly the first entries of the full
// reduce.SortWithIndex ranking: the k smallest values in ascending
// order, NaNs last, ties by original index. The remaining entries are a
// permutation of the rest in unspecified (but deterministic) order.
// dists is not modified.
func SelectKWithIndex(dists []float64, k int) (vals []float64, idx []int) {
	n := len(dists)
	return SelectKWithIndexInto(dists, k, make([]float64, n), make([]int, n))
}

// SelectKWithIndexInto is SelectKWithIndex writing into caller-provided
// buffers (both of length len(dists)), so interactive reruns rank
// without allocating two n-sized slices per run. The buffers are
// overwritten in full; the returned slices alias them. Output is
// bit-identical to SelectKWithIndex.
func SelectKWithIndexInto(dists []float64, k int, vals []float64, idx []int) ([]float64, []int) {
	n := len(dists)
	if len(vals) != n || len(idx) != n {
		vals, idx = make([]float64, n), make([]int, n)
	}
	for i := range idx {
		idx[i] = i
	}
	if k > n {
		k = n
	}
	if k > 0 {
		partitionK(dists, idx, k)
		prefix := idx[:k]
		sort.Slice(prefix, func(a, b int) bool { return less(dists, prefix[a], prefix[b]) })
	}
	for i, j := range idx {
		vals[i] = dists[j]
	}
	return vals, idx
}

// SelectK returns the min(k, len(dists)) smallest values of dists in
// ascending order (NaNs last, as in SortWithIndex). dists is not
// modified.
func SelectK(dists []float64, k int) []float64 {
	n := len(dists)
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	vals, _ := SelectKWithIndex(dists, k)
	return vals[:k:k]
}

// Threshold returns the k-th smallest value of xs (1-based) under the
// package ordering — the value a full ascending NaN-last sort would
// place at index k-1. It runs in expected O(n) time by partially
// reordering xs in place; pass a copy if the input ordering matters.
// k is clamped to [1, len(xs)]; an empty xs yields NaN.
func Threshold(xs []float64, k int) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	// Move NaNs to the tail so the numeric quickselect below sees only
	// comparable values.
	m := n
	for i := 0; i < m; {
		if math.IsNaN(xs[i]) {
			m--
			xs[i], xs[m] = xs[m], xs[i]
		} else {
			i++
		}
	}
	if k > m {
		return math.NaN() // the k-th entry falls in the NaN tail
	}
	return floatSelect(xs[:m], k)
}

// floatSelect returns the k-th smallest (1-based) of a, which must be
// NaN-free. It reorders a in place with a three-way-partition
// quickselect, so duplicate-heavy inputs stay linear.
func floatSelect(a []float64, k int) float64 {
	lo, hi := 0, len(a)
	for {
		if hi-lo <= 16 {
			sub := a[lo:hi]
			sort.Float64s(sub)
			return a[k-1]
		}
		p := medianOfThree(a[lo], a[lo+(hi-lo)/2], a[hi-1])
		// Dutch-flag partition of a[lo:hi) around p:
		// a[lo:lt) < p, a[lt:gt) == p, a[gt:hi) > p.
		lt, gt, i := lo, hi, lo
		for i < gt {
			switch {
			case a[i] < p:
				a[i], a[lt] = a[lt], a[i]
				lt++
				i++
			case a[i] > p:
				gt--
				a[i], a[gt] = a[gt], a[i]
			default:
				i++
			}
		}
		switch {
		case k-1 < lt:
			hi = lt
		case k-1 >= gt:
			lo = gt
		default:
			return p
		}
	}
}

// Bounded is a bounded max-heap that streams the k smallest of a
// sequence of values using O(k) space, without materializing or
// mutating the sequence — the allocation-free alternative to Threshold
// when k ≪ n (a display budget against a million distances). Offer
// every candidate; Threshold then returns the k-th smallest seen.
type Bounded struct {
	k    int
	heap []float64
}

// NewBounded returns a bounded selector of the k smallest values.
func NewBounded(k int) *Bounded {
	if k < 1 {
		k = 1
	}
	return &Bounded{k: k, heap: make([]float64, 0, k)}
}

// Offer considers v. NaNs are ignored (callers stream comparable
// values; Normalize filters non-finite entries itself).
func (b *Bounded) Offer(v float64) {
	if math.IsNaN(v) {
		return
	}
	if len(b.heap) < b.k {
		b.heap = append(b.heap, v)
		// Sift up.
		i := len(b.heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if b.heap[p] >= b.heap[i] {
				break
			}
			b.heap[p], b.heap[i] = b.heap[i], b.heap[p]
			i = p
		}
		return
	}
	if v >= b.heap[0] {
		return
	}
	// Replace the current maximum and sift down.
	b.heap[0] = v
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(b.heap) && b.heap[l] > b.heap[big] {
			big = l
		}
		if r < len(b.heap) && b.heap[r] > b.heap[big] {
			big = r
		}
		if big == i {
			return
		}
		b.heap[i], b.heap[big] = b.heap[big], b.heap[i]
		i = big
	}
}

// Len is how many values are currently kept (min(k, offered)).
func (b *Bounded) Len() int { return len(b.heap) }

// Threshold returns the largest kept value — the min(k, offered)-th
// smallest value offered so far — or NaN when nothing was offered.
func (b *Bounded) Threshold() float64 {
	if len(b.heap) == 0 {
		return math.NaN()
	}
	return b.heap[0]
}

func medianOfThree(a, b, c float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// partitionK reorders idx so its first k entries are the k smallest
// under less, in arbitrary order. Classic quickselect with
// median-of-three pivots; the index tiebreak makes every key distinct,
// so a binary (Lomuto) partition cannot degenerate on duplicates.
func partitionK(d []float64, idx []int, k int) {
	lo, hi := 0, len(idx)
	for hi-lo > 16 {
		if k <= lo || k >= hi {
			return
		}
		p := partitionIdx(d, idx, lo, hi)
		switch {
		case p < k:
			lo = p + 1
		case p > k:
			hi = p
		default:
			return
		}
	}
	insertionSortIdx(d, idx, lo, hi)
}

// partitionIdx partitions idx[lo:hi) around a median-of-three pivot and
// returns the pivot's final position.
func partitionIdx(d []float64, idx []int, lo, hi int) int {
	mid := lo + (hi-lo)/2
	if less(d, idx[mid], idx[lo]) {
		idx[mid], idx[lo] = idx[lo], idx[mid]
	}
	if less(d, idx[hi-1], idx[mid]) {
		idx[hi-1], idx[mid] = idx[mid], idx[hi-1]
		if less(d, idx[mid], idx[lo]) {
			idx[mid], idx[lo] = idx[lo], idx[mid]
		}
	}
	// idx[mid] is the median of the three; park it at hi-1 and sweep.
	idx[mid], idx[hi-1] = idx[hi-1], idx[mid]
	pv := idx[hi-1]
	store := lo
	for i := lo; i < hi-1; i++ {
		if less(d, idx[i], pv) {
			idx[i], idx[store] = idx[store], idx[i]
			store++
		}
	}
	idx[store], idx[hi-1] = idx[hi-1], idx[store]
	return store
}

func insertionSortIdx(d []float64, idx []int, lo, hi int) {
	for i := lo + 1; i < hi; i++ {
		for j := i; j > lo && less(d, idx[j], idx[j-1]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}
