package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQuantileEmpty(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Fatalf("expected ErrEmpty, got %v", err)
	}
}

func TestQuantileSingle(t *testing.T) {
	for _, alpha := range []float64{-1, 0, 0.3, 0.5, 1, 2} {
		q, err := Quantile([]float64{42}, alpha)
		if err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
		if q != 42 {
			t.Errorf("alpha=%v: got %v, want 42", alpha, q)
		}
	}
}

func TestQuantileKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		alpha float64
		want  float64
	}{
		{0, 1},
		{0.1, 1},
		{0.25, 3},
		{0.5, 5},
		{0.9, 9},
		{1, 10},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.alpha)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.alpha, got, c.want)
		}
	}
}

func TestQuantileUnsortedInputUntouched(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	orig := append([]float64(nil), xs...)
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatalf("input mutated at %d: %v vs %v", i, xs, orig)
		}
	}
}

func TestQuantileIndexBounds(t *testing.T) {
	if got := QuantileIndex(0, 0.5); got != 0 {
		t.Errorf("empty: got %d", got)
	}
	if got := QuantileIndex(10, 0); got != 0 {
		t.Errorf("alpha 0: got %d", got)
	}
	if got := QuantileIndex(10, 1); got != 10 {
		t.Errorf("alpha 1: got %d", got)
	}
	if got := QuantileIndex(10, 0.25); got != 3 {
		t.Errorf("alpha 0.25: got %d, want 3", got)
	}
}

// Property: the quantile is monotone in alpha and lies within sample
// bounds.
func TestQuantileProperties(t *testing.T) {
	f := func(raw []float64, a1, a2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			// Keep values finite so comparisons are meaningful.
			if x == x && x < 1e300 && x > -1e300 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		lo, hi := clamp01(a1), clamp01(a2)
		if lo > hi {
			lo, hi = hi, lo
		}
		q1, err1 := Quantile(xs, lo)
		q2, err2 := Quantile(xs, hi)
		if err1 != nil || err2 != nil {
			return false
		}
		min, max := MinMax(xs)
		return q1 <= q2 && q1 >= min && q2 <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func clamp01(v float64) float64 {
	if v != v || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func TestECDF(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	cdf := ECDF(xs)
	cases := []struct{ v, want float64 }{
		{0, 0},
		{1, 0.25},
		{2, 0.75},
		{2.5, 0.75},
		{3, 1},
		{10, 1},
	}
	for _, c := range cases {
		if got := cdf(c.v); got != c.want {
			t.Errorf("ECDF(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestECDFEmpty(t *testing.T) {
	cdf := ECDF(nil)
	if got := cdf(0); got != 0 {
		t.Errorf("empty ECDF = %v, want 0", got)
	}
}

func TestZeroQuantileAlpha(t *testing.T) {
	sorted := []float64{-3, -2, -1, 0, 1, 2}
	// Four values ≤ 0 out of six.
	if got := ZeroQuantileAlpha(sorted); got != 4.0/6.0 {
		t.Errorf("got %v, want %v", got, 4.0/6.0)
	}
	if got := ZeroQuantileAlpha(nil); got != 0 {
		t.Errorf("empty: got %v", got)
	}
	allPos := []float64{1, 2, 3}
	if got := ZeroQuantileAlpha(allPos); got != 0 {
		t.Errorf("all positive: got %v", got)
	}
	allNeg := []float64{-3, -2, -1}
	if got := ZeroQuantileAlpha(allNeg); got != 1 {
		t.Errorf("all negative: got %v", got)
	}
}

// Property: quantile-then-count round trip. For a sorted sample with
// distinct values, the number of items ≤ the α-quantile equals
// QuantileIndex (ties aside).
func TestQuantileIndexConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) // distinct, sorted
		}
		alpha := rng.Float64()
		q, err := QuantileSorted(xs, alpha)
		if err != nil {
			t.Fatal(err)
		}
		k := QuantileIndex(n, alpha)
		count := sort.SearchFloat64s(xs, q+0.5)
		if count != k {
			t.Fatalf("n=%d alpha=%v: count=%d, QuantileIndex=%d", n, alpha, count, k)
		}
	}
}
