package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is an equal-width binning of a sample, used for density
// visualization (figure 2 of the paper) and for the reduction-heuristic
// diagnostics.
type Histogram struct {
	Min    float64
	Max    float64
	Counts []int
	Total  int
}

// NewHistogram bins xs into `bins` equal-width buckets spanning
// [min(xs), max(xs)]. NaN values are skipped. A histogram with zero total
// is returned for an empty (or all-NaN) sample.
func NewHistogram(xs []float64, bins int) Histogram {
	if bins < 1 {
		bins = 1
	}
	h := Histogram{Counts: make([]int, bins)}
	first := true
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		if first {
			h.Min, h.Max = x, x
			first = false
			continue
		}
		if x < h.Min {
			h.Min = x
		}
		if x > h.Max {
			h.Max = x
		}
	}
	if first {
		return h
	}
	width := h.Max - h.Min
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		var idx int
		if width > 0 {
			idx = int(float64(bins) * (x - h.Min) / width)
		}
		if idx >= bins {
			idx = bins - 1
		}
		if idx < 0 {
			idx = 0
		}
		h.Counts[idx]++
		h.Total++
	}
	return h
}

// BinCenter returns the midpoint value of bin i.
func (h Histogram) BinCenter(i int) float64 {
	bins := len(h.Counts)
	if bins == 0 {
		return h.Min
	}
	width := (h.Max - h.Min) / float64(bins)
	return h.Min + (float64(i)+0.5)*width
}

// Peaks returns the indices of local maxima of the histogram whose count
// is at least minFrac of the total. Bins count as peaks when strictly
// greater than the left neighbour and at least the right neighbour (so
// plateaus report their left edge). It is used to classify distance
// densities as unimodal vs multimodal (figure 2).
func (h Histogram) Peaks(minFrac float64) []int {
	var peaks []int
	threshold := int(math.Ceil(minFrac * float64(h.Total)))
	for i, c := range h.Counts {
		if c < threshold || c == 0 {
			continue
		}
		left := -1
		if i > 0 {
			left = h.Counts[i-1]
		}
		right := -1
		if i < len(h.Counts)-1 {
			right = h.Counts[i+1]
		}
		if c > left && c >= right {
			peaks = append(peaks, i)
		}
	}
	return peaks
}

// ASCII renders the histogram as a vertical-bar string, height rows tall.
// It is the text stand-in for the density plots of figure 2.
func (h Histogram) ASCII(height int) string {
	if height < 1 {
		height = 1
	}
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount == 0 {
		return "(empty histogram)\n"
	}
	var b strings.Builder
	for row := height; row >= 1; row-- {
		cut := float64(row) / float64(height) * float64(maxCount)
		for _, c := range h.Counts {
			if float64(c) >= cut {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "min=%.3g max=%.3g n=%d\n", h.Min, h.Max, h.Total)
	return b.String()
}
