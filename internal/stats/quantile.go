// Package stats provides the statistical substrate of the VisDB
// reproduction: empirical quantiles (the α-quantile of section 5.1 of the
// paper), histograms, kernel density estimates, correlation measures and
// seeded random distributions used by the synthetic workload generators.
//
// All functions are deterministic given their inputs; random sources are
// always passed explicitly so experiments are reproducible.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Quantile returns the empirical α-quantile of xs: the lowest value ξ such
// that the fraction of samples ≤ ξ is at least α. This is the definition
// used in section 5.1 of the paper (F(ξα) ≥ α with the empirical CDF).
//
// α is clamped to [0, 1]. Quantile copies and sorts xs; use QuantileSorted
// when the data is already sorted to avoid the O(n log n) cost.
func Quantile(xs []float64, alpha float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, alpha)
}

// QuantileSorted is Quantile for data already sorted in ascending order.
func QuantileSorted(sorted []float64, alpha float64) (float64, error) {
	n := len(sorted)
	if n == 0 {
		return 0, ErrEmpty
	}
	if alpha <= 0 {
		return sorted[0], nil
	}
	if alpha >= 1 {
		return sorted[n-1], nil
	}
	// Lowest index i such that (i+1)/n >= alpha.
	i := int(math.Ceil(alpha*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return sorted[i], nil
}

// QuantileIndex returns the number of items of the sorted sample that lie
// in the lower α fraction, i.e. the count k such that sorted[:k] is the
// [0, α-quantile] prefix. It is the item-count form of QuantileSorted used
// by the display-reduction heuristics.
func QuantileIndex(n int, alpha float64) int {
	if n == 0 {
		return 0
	}
	if alpha <= 0 {
		return 0
	}
	if alpha >= 1 {
		return n
	}
	k := int(math.Ceil(alpha * float64(n)))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// ECDF returns the empirical cumulative distribution function of xs as a
// closure. The closure reports, for a value v, the fraction of samples ≤ v.
func ECDF(xs []float64) func(v float64) float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	return func(v float64) float64 {
		if len(sorted) == 0 {
			return 0
		}
		idx := sort.SearchFloat64s(sorted, math.Nextafter(v, math.Inf(1)))
		return float64(idx) / n
	}
}

// ZeroQuantileAlpha returns α₀ such that the α₀-quantile of the sorted
// sample equals zero, i.e. the fraction of samples that are ≤ 0. It is
// used for the signed-distance display range of section 5.1:
// [α₀·(1−p)-quantile, (α₀·(1−p)+p)-quantile].
func ZeroQuantileAlpha(sorted []float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(sorted, math.Nextafter(0, math.Inf(1)))
	return float64(idx) / float64(len(sorted))
}
