package stats

import (
	"math"
	"sort"
)

// Pearson returns the Pearson correlation coefficient of the paired
// samples xs and ys. It returns 0 when the slices differ in length, hold
// fewer than two pairs, or either side has zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// LaggedPearson returns the Pearson correlation of xs[i] with ys[i+lag].
// A positive lag means ys trails xs (ys reacts `lag` steps later), which
// is the sense used for the paper's "time-lagged increase of temperature
// and ozone" example. Out-of-range pairs are dropped. It returns 0 when
// fewer than two pairs overlap.
func LaggedPearson(xs, ys []float64, lag int) float64 {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	var a, b []float64
	for i := 0; i < n; i++ {
		j := i + lag
		if j < 0 || j >= len(ys) {
			continue
		}
		a = append(a, xs[i])
		b = append(b, ys[j])
	}
	return Pearson(a, b)
}

// BestLag scans lags in [-maxLag, maxLag] and returns the lag with the
// highest absolute lagged Pearson correlation, together with that
// correlation. Used by the environmental experiment to verify that the
// generator plants the 2-hour ozone lag the paper's example query hunts
// for.
func BestLag(xs, ys []float64, maxLag int) (lag int, corr float64) {
	best := 0.0
	bestLag := 0
	for l := -maxLag; l <= maxLag; l++ {
		c := LaggedPearson(xs, ys, l)
		if math.Abs(c) > math.Abs(best) {
			best = c
			bestLag = l
		}
	}
	return bestLag, best
}

// Spearman returns the Spearman rank correlation of the paired samples:
// the Pearson correlation of their rank vectors (average ranks for
// ties). It measures how well one ranking preserves another — used to
// quantify ranking distortion in the normalization ablation.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based fractional ranks of xs (ties share the
// average of their positions).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}
