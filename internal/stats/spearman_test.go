package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestRanks(t *testing.T) {
	got := Ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks: %v, want %v", got, want)
		}
	}
	// Ties share average ranks: 10,20,20,30 → 1, 2.5, 2.5, 4.
	got = Ranks([]float64{10, 20, 20, 30})
	want = []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tied ranks: %v, want %v", got, want)
		}
	}
	if len(Ranks(nil)) != 0 {
		t.Error("empty")
	}
}

func TestSpearmanPerfectAndInverse(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	mono := []float64{10, 100, 1000, 10000, 100000} // nonlinear but monotone
	if got := Spearman(xs, mono); math.Abs(got-1) > 1e-12 {
		t.Errorf("monotone: %v", got)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if got := Spearman(xs, rev); math.Abs(got+1) > 1e-12 {
		t.Errorf("inverse: %v", got)
	}
	if Spearman(xs, []float64{1}) != 0 {
		t.Error("length mismatch")
	}
}

func TestSpearmanVsPearsonOutlier(t *testing.T) {
	// One huge outlier wrecks Pearson but barely moves Spearman.
	rng := rand.New(rand.NewSource(1))
	n := 200
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i) + rng.NormFloat64()
	}
	ys[n-1] = -1e9
	sp := Spearman(xs, ys)
	pe := Pearson(xs, ys)
	if sp < 0.9 {
		t.Errorf("spearman should survive the outlier: %v", sp)
	}
	if pe > 0.5 {
		t.Errorf("pearson should be wrecked by the outlier: %v", pe)
	}
}
