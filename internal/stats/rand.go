package stats

import "math/rand"

// Dist is a real-valued random distribution. All generator code draws
// through this interface so workloads can swap distributions without
// touching the call sites.
type Dist interface {
	// Sample draws one value using rng.
	Sample(rng *rand.Rand) float64
}

// Uniform is the uniform distribution on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return u.Lo + rng.Float64()*(u.Hi-u.Lo)
}

// Normal is the normal distribution with the given mean and standard
// deviation.
type Normal struct{ Mean, Std float64 }

// Sample implements Dist.
func (n Normal) Sample(rng *rand.Rand) float64 {
	return n.Mean + rng.NormFloat64()*n.Std
}

// Exponential is the exponential distribution with the given rate.
type Exponential struct{ Rate float64 }

// Sample implements Dist.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	rate := e.Rate
	if rate <= 0 {
		rate = 1
	}
	return rng.ExpFloat64() / rate
}

// Mixture draws from Components[i] with probability Weights[i]
// (normalized). It builds the bimodal distance densities of figure 2b.
type Mixture struct {
	Components []Dist
	Weights    []float64
}

// Sample implements Dist.
func (m Mixture) Sample(rng *rand.Rand) float64 {
	if len(m.Components) == 0 {
		return 0
	}
	var total float64
	for i := range m.Components {
		w := 1.0
		if i < len(m.Weights) {
			w = m.Weights[i]
		}
		total += w
	}
	u := rng.Float64() * total
	for i := range m.Components {
		w := 1.0
		if i < len(m.Weights) {
			w = m.Weights[i]
		}
		if u < w {
			return m.Components[i].Sample(rng)
		}
		u -= w
	}
	return m.Components[len(m.Components)-1].Sample(rng)
}

// Bimodal is a convenience two-normal mixture with equal weights.
func Bimodal(mean1, std1, mean2, std2 float64) Mixture {
	return Mixture{
		Components: []Dist{Normal{mean1, std1}, Normal{mean2, std2}},
		Weights:    []float64{1, 1},
	}
}

// SampleN draws n values from d.
func SampleN(d Dist, rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}
