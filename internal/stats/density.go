package stats

import (
	"math"
	"sort"
)

// KDE is a Gaussian kernel density estimate over a sample. The paper's
// section 5.1 reasons about the density function f(x) of the distance
// values (figure 2); KDE provides that density for the reduction
// heuristic diagnostics and the figure-2 harness.
type KDE struct {
	xs        []float64
	bandwidth float64
}

// NewKDE builds a Gaussian KDE over xs. If bandwidth <= 0, Silverman's
// rule of thumb (1.06·σ·n^(-1/5)) is used, with a small floor so
// degenerate samples still evaluate.
func NewKDE(xs []float64, bandwidth float64) *KDE {
	data := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			data = append(data, x)
		}
	}
	if bandwidth <= 0 {
		s := Summarize(data)
		bandwidth = 1.06 * s.Std * math.Pow(float64(max(s.N, 1)), -0.2)
		if bandwidth <= 0 {
			bandwidth = 1e-9
		}
	}
	return &KDE{xs: data, bandwidth: bandwidth}
}

// Bandwidth reports the bandwidth in use.
func (k *KDE) Bandwidth() float64 { return k.bandwidth }

// At evaluates the density estimate at v.
func (k *KDE) At(v float64) float64 {
	if len(k.xs) == 0 {
		return 0
	}
	const invSqrt2Pi = 0.3989422804014327
	var sum float64
	for _, x := range k.xs {
		u := (v - x) / k.bandwidth
		sum += invSqrt2Pi * math.Exp(-0.5*u*u)
	}
	return sum / (float64(len(k.xs)) * k.bandwidth)
}

// Grid evaluates the density on n evenly spaced points across [lo, hi]
// and returns the points and densities. n < 2 is treated as 2.
func (k *KDE) Grid(lo, hi float64, n int) (points, density []float64) {
	if n < 2 {
		n = 2
	}
	points = make([]float64, n)
	density = make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := 0; i < n; i++ {
		points[i] = lo + float64(i)*step
		density[i] = k.At(points[i])
	}
	return points, density
}

// ModeCount estimates the number of modes (local density maxima) of the
// sample by scanning a KDE evaluated on a grid of n points over the data
// range. Boundary grid points count as candidate modes (monotone
// densities peak there), and candidates must rise at least 10% of the
// global peak above the saddle separating them from higher terrain, so
// sampling noise does not inflate the count. Used to decide, as
// section 5.1 suggests, whether the multi-peak gap heuristic should
// override the plain α-quantile.
func ModeCount(xs []float64, n int) int {
	if len(xs) == 0 {
		return 0
	}
	s := Summarize(xs)
	if s.N == 0 || s.Min == s.Max {
		return 1
	}
	k := NewKDE(xs, 0)
	_, dens := k.Grid(s.Min, s.Max, n)
	var peaks []int
	globalMax := 0.0
	for i, d := range dens {
		if d > globalMax {
			globalMax = d
		}
		left := i == 0 || dens[i] > dens[i-1]
		right := i == len(dens)-1 || dens[i] >= dens[i+1]
		if left && right && d > 0 {
			peaks = append(peaks, i)
		}
	}
	if len(peaks) == 0 || globalMax == 0 {
		return 1
	}
	sort.Slice(peaks, func(a, b int) bool { return dens[peaks[a]] > dens[peaks[b]] })
	accepted := []int{peaks[0]}
	for _, p := range peaks[1:] {
		// Saddle: for each already-accepted (taller) peak, the minimum
		// density on the way there; the peak's prominence is its height
		// above the highest such saddle.
		saddle := math.Inf(-1)
		for _, q := range accepted {
			lo, hi := p, q
			if lo > hi {
				lo, hi = hi, lo
			}
			valley := math.Inf(1)
			for i := lo; i <= hi; i++ {
				if dens[i] < valley {
					valley = dens[i]
				}
			}
			if valley > saddle {
				saddle = valley
			}
		}
		if dens[p]-saddle >= 0.1*globalMax {
			accepted = append(accepted, p)
		}
	}
	return len(accepted)
}
