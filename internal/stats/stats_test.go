package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	want := math.Sqrt(1.25)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("std = %v, want %v", s.Std, want)
	}
	if s.Median != 2 {
		t.Errorf("median = %v, want 2 (lower of the middle pair)", s.Median)
	}
}

func TestSummarizeSkipsNaN(t *testing.T) {
	s := Summarize([]float64{math.NaN(), 5, math.NaN()})
	if s.N != 1 || s.Min != 5 || s.Max != 5 {
		t.Fatalf("unexpected summary: %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatalf("unexpected: %+v", s)
	}
	s = Summarize([]float64{math.NaN()})
	if s.N != 0 {
		t.Fatalf("all-NaN should summarize to empty, got %+v", s)
	}
}

func TestMeanVariance(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Variance([]float64{3}) != 0 {
		t.Error("Variance of singleton != 0")
	}
	if got := Variance([]float64{2, 4}); got != 1 {
		t.Errorf("Variance = %v, want 1", got)
	}
}

func TestMinMaxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty MinMax")
		}
	}()
	MinMax(nil)
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Errorf("positive: got %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("negative: got %v", got)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if got := Pearson([]float64{1, 2}, []float64{3}); got != 0 {
		t.Errorf("length mismatch: %v", got)
	}
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("zero variance: %v", got)
	}
}

// Property: |Pearson| <= 1 for any finite paired sample.
func TestPearsonBounded(t *testing.T) {
	f := func(pairs []struct{ X, Y float64 }) bool {
		var xs, ys []float64
		for _, p := range pairs {
			if isFinite(p.X) && isFinite(p.Y) && math.Abs(p.X) < 1e150 && math.Abs(p.Y) < 1e150 {
				xs = append(xs, p.X)
				ys = append(ys, p.Y)
			}
		}
		c := Pearson(xs, ys)
		return c >= -1.0000001 && c <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func TestLaggedPearsonFindsPlantedLag(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 500
	const lag = 3
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(float64(i)/10) + 0.05*rng.NormFloat64()
	}
	for i := range ys {
		if i >= lag {
			ys[i] = xs[i-lag] + 0.05*rng.NormFloat64()
		}
	}
	got, corr := BestLag(xs, ys, 8)
	if got != lag {
		t.Fatalf("BestLag = %d (corr %v), want %d", got, corr, lag)
	}
	if corr < 0.9 {
		t.Errorf("correlation at best lag too weak: %v", corr)
	}
}

func TestHistogramKnown(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if h.Total != 10 {
		t.Fatalf("total = %d", h.Total)
	}
	for i, c := range h.Counts {
		if c != 2 {
			t.Errorf("bin %d = %d, want 2", i, c)
		}
	}
	if h.BinCenter(0) != 0.9 {
		t.Errorf("BinCenter(0) = %v, want 0.9", h.BinCenter(0))
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram(nil, 4)
	if h.Total != 0 {
		t.Fatalf("empty: %+v", h)
	}
	h = NewHistogram([]float64{5, 5, 5}, 4)
	if h.Total != 3 || h.Counts[0] != 3 {
		t.Fatalf("constant sample should land in bin 0: %+v", h)
	}
	if !strings.Contains(NewHistogram(nil, 3).ASCII(4), "empty") {
		t.Error("empty histogram ASCII should say so")
	}
}

func TestHistogramPeaks(t *testing.T) {
	// Bimodal: peaks at the two ends.
	rng := rand.New(rand.NewSource(2))
	xs := SampleN(Bimodal(0, 0.5, 10, 0.5), rng, 4000)
	h := NewHistogram(xs, 40)
	peaks := h.Peaks(0.01)
	if len(peaks) < 2 {
		t.Fatalf("expected >=2 peaks for bimodal data, got %v", peaks)
	}
	// Unimodal: a single dominant peak (coarse bins keep sampling noise
	// from splitting the mode).
	uni := SampleN(Normal{5, 1}, rng, 4000)
	hu := NewHistogram(uni, 12)
	big := hu.Peaks(0.1)
	if len(big) != 1 {
		t.Fatalf("expected 1 dominant peak for unimodal data, got %v", big)
	}
}

func TestHistogramASCIIShape(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 2, 3, 3, 3}, 3)
	art := h.ASCII(3)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 4 { // 3 rows + stats line
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), art)
	}
	if !strings.HasSuffix(lines[0], "#") {
		t.Errorf("tallest bin should reach the top row: %q", lines[0])
	}
}

func TestKDEIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := SampleN(Normal{0, 1}, rng, 300)
	k := NewKDE(xs, 0)
	pts, dens := k.Grid(-6, 6, 600)
	var integral float64
	for i := 1; i < len(pts); i++ {
		integral += (dens[i] + dens[i-1]) / 2 * (pts[i] - pts[i-1])
	}
	if math.Abs(integral-1) > 0.05 {
		t.Errorf("KDE integral = %v, want ~1", integral)
	}
}

func TestKDEDegenerate(t *testing.T) {
	k := NewKDE(nil, 0)
	if k.At(0) != 0 {
		t.Error("empty KDE should evaluate to 0")
	}
	k = NewKDE([]float64{math.Inf(1), math.NaN(), 2}, 0)
	if k.At(2) <= 0 {
		t.Error("KDE should survive Inf/NaN inputs")
	}
	if k.Bandwidth() <= 0 {
		t.Error("bandwidth must stay positive")
	}
}

func TestModeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	uni := SampleN(Normal{0, 1}, rng, 1000)
	if got := ModeCount(uni, 64); got != 1 {
		t.Errorf("unimodal: got %d modes", got)
	}
	bi := SampleN(Bimodal(0, 0.4, 8, 0.4), rng, 1000)
	if got := ModeCount(bi, 64); got < 2 {
		t.Errorf("bimodal: got %d modes", got)
	}
	if got := ModeCount(nil, 64); got != 0 {
		t.Errorf("empty: got %d", got)
	}
	if got := ModeCount([]float64{3, 3, 3}, 64); got != 1 {
		t.Errorf("constant: got %d", got)
	}
}

func TestDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	u := SampleN(Uniform{2, 4}, rng, 2000)
	su := Summarize(u)
	if su.Min < 2 || su.Max >= 4 {
		t.Errorf("uniform out of range: [%v, %v]", su.Min, su.Max)
	}
	if math.Abs(su.Mean-3) > 0.1 {
		t.Errorf("uniform mean = %v", su.Mean)
	}
	n := SampleN(Normal{10, 2}, rng, 5000)
	sn := Summarize(n)
	if math.Abs(sn.Mean-10) > 0.2 || math.Abs(sn.Std-2) > 0.2 {
		t.Errorf("normal: mean=%v std=%v", sn.Mean, sn.Std)
	}
	e := SampleN(Exponential{Rate: 2}, rng, 5000)
	se := Summarize(e)
	if se.Min < 0 || math.Abs(se.Mean-0.5) > 0.1 {
		t.Errorf("exponential: min=%v mean=%v", se.Min, se.Mean)
	}
	// Zero-rate guard.
	bad := Exponential{Rate: 0}
	if v := bad.Sample(rng); v < 0 {
		t.Errorf("exponential with rate 0 should still sample, got %v", v)
	}
}

func TestMixtureWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := Mixture{
		Components: []Dist{Normal{0, 0.1}, Normal{100, 0.1}},
		Weights:    []float64{3, 1},
	}
	xs := SampleN(m, rng, 4000)
	var low int
	for _, x := range xs {
		if x < 50 {
			low++
		}
	}
	frac := float64(low) / float64(len(xs))
	if math.Abs(frac-0.75) > 0.05 {
		t.Errorf("component-0 fraction = %v, want ~0.75", frac)
	}
	// Empty mixture samples zero.
	if (Mixture{}).Sample(rng) != 0 {
		t.Error("empty mixture should sample 0")
	}
	// Missing weights default to 1.
	m2 := Mixture{Components: []Dist{Normal{0, 0.01}, Normal{1, 0.01}}}
	xs2 := SampleN(m2, rng, 1000)
	s2 := Summarize(xs2)
	if math.Abs(s2.Mean-0.5) > 0.1 {
		t.Errorf("unweighted mixture mean = %v, want ~0.5", s2.Mean)
	}
}
