package stats

import "math"

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Std    float64 // population standard deviation
	Median float64
}

// Summarize computes a Summary of xs. NaN values are skipped; if all
// values are NaN (or xs is empty) the zero Summary with N == 0 is
// returned.
func Summarize(xs []float64) Summary {
	var s Summary
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	var sum, sumSq float64
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		clean = append(clean, x)
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
		sumSq += x * x
	}
	s.N = len(clean)
	if s.N == 0 {
		return Summary{}
	}
	n := float64(s.N)
	s.Mean = sum / n
	variance := sumSq/n - s.Mean*s.Mean
	if variance < 0 {
		variance = 0 // numerical noise
	}
	s.Std = math.Sqrt(variance)
	s.Median, _ = Quantile(clean, 0.5)
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// MinMax returns the minimum and maximum of xs. It panics on an empty
// slice; callers guard with len checks.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}
