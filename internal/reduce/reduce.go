// Package reduce implements the display-reduction heuristics of
// section 5.1 of the paper: since the number of data items that can be
// displayed is limited by the number of pixels, the engine picks which
// distances to show using either the α-quantile (the exact way) or, for
// multi-peak distance densities, a gap heuristic that cuts between the
// groups so "the graduate differences within this group are better
// enhanced by different colors".
package reduce

import (
	"math"
	"sort"

	"repro/internal/stats"
)

// DisplayFraction returns p = r / (n·(#sp+1)): the fraction of the n
// data items whose distances fit on a screen with r usable distance
// pixels, when the visualization shows one overall window plus one
// window per selection predicate (#sp windows), every item appearing in
// each window. The result is clamped to [0, 1].
func DisplayFraction(r, n, numPredicates int) float64 {
	if n <= 0 || r <= 0 {
		return 0
	}
	if numPredicates < 0 {
		numPredicates = 0
	}
	p := float64(r) / (float64(n) * float64(numPredicates+1))
	if p > 1 {
		return 1
	}
	return p
}

// PixelBudget converts a pixel count into a distance-value budget when
// each item occupies pixelsPerItem pixels (1, 4 or 16 per section 4.2):
// "the number of presentable data items needs to be divided by the
// corresponding factor".
func PixelBudget(pixels, pixelsPerItem int) int {
	if pixelsPerItem < 1 {
		pixelsPerItem = 1
	}
	return pixels / pixelsPerItem
}

// QuantileCut returns how many of the n sorted distance values to
// display for fraction p: the items within [0, p-quantile]. It is the
// item-count form of the α-quantile selection.
func QuantileCut(n int, p float64) int {
	return stats.QuantileIndex(n, p)
}

// SignedQuantileCut returns the half-open index range [lo, hi) of sorted
// signed distances to display for fraction p, per the paper's signed
// rule: values within [α₀·(1−p)-quantile, (α₀·(1−p)+p)-quantile] where
// the α₀-quantile is zero. This centers the displayed band on the sign
// change so both directions stay represented.
func SignedQuantileCut(sorted []float64, p float64) (lo, hi int) {
	n := len(sorted)
	if n == 0 || p <= 0 {
		return 0, 0
	}
	if p >= 1 {
		return 0, n
	}
	alpha0 := stats.ZeroQuantileAlpha(sorted)
	loAlpha := alpha0 * (1 - p)
	hiAlpha := loAlpha + p
	lo = stats.QuantileIndex(n, loAlpha)
	hi = stats.QuantileIndex(n, hiAlpha)
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Items2D implements the paper's special case for the 2D arrangement:
// "In the special case of two attributes assigned to the two axis,
// correspondingly the combined α-quantiles for two dimensions may be
// used." It selects the items whose signed distances lie within the
// per-dimension signed quantile bands, growing the per-dimension
// fraction from √p until the intersection reaches the target count
// target ≈ p·n (or the bands cover everything). The returned indices
// preserve input order.
func Items2D(dx, dy []float64, p float64) []int {
	n := len(dx)
	if n == 0 || len(dy) != n || p <= 0 {
		return nil
	}
	if p > 1 {
		p = 1
	}
	target := int(math.Ceil(p * float64(n)))
	sortedX := append([]float64(nil), dx...)
	sortedY := append([]float64(nil), dy...)
	// NaNs disqualify an item from both bands; drop them from the
	// band estimation.
	sortedX = dropNaN(sortedX)
	sortedY = dropNaN(sortedY)
	if len(sortedX) == 0 || len(sortedY) == 0 {
		return nil
	}
	sort.Float64s(sortedX)
	sort.Float64s(sortedY)
	frac := math.Sqrt(p)
	var selected []int
	for iter := 0; iter < 32; iter++ {
		loX, hiX := signedBand(sortedX, frac)
		loY, hiY := signedBand(sortedY, frac)
		selected = selected[:0]
		for i := 0; i < n; i++ {
			if math.IsNaN(dx[i]) || math.IsNaN(dy[i]) {
				continue
			}
			if dx[i] >= loX && dx[i] <= hiX && dy[i] >= loY && dy[i] <= hiY {
				selected = append(selected, i)
			}
		}
		if len(selected) >= target || frac >= 1 {
			break
		}
		frac = math.Min(1, frac*1.25)
	}
	return append([]int(nil), selected...)
}

// signedBand returns the inclusive value band of the signed quantile
// cut for fraction f over a sorted sample.
func signedBand(sorted []float64, f float64) (lo, hi float64) {
	loIdx, hiIdx := SignedQuantileCut(sorted, f)
	if hiIdx <= loIdx {
		return math.Inf(1), math.Inf(-1) // empty band
	}
	return sorted[loIdx], sorted[hiIdx-1]
}

func dropNaN(xs []float64) []float64 {
	out := xs[:0]
	for _, x := range xs {
		if !math.IsNaN(x) {
			out = append(out, x)
		}
	}
	return out
}

// GapOptions tunes GapCut. Z is the window half-width z of the paper's
// sᵢ = Σ_{j=i−z..i+z}(dᵢ−dⱼ) statistic, with 2 < z ≪ rmax−rmin; when
// zero, a data-dependent default of max(3, (RMax−RMin)/16) is used.
type GapOptions struct {
	RMin int // fewest distances the user wants displayed
	RMax int // most distances the user wants displayed
	Z    int
}

// GapCut implements the multi-peak heuristic of section 5.1: with the
// distances sorted ascending, it computes sᵢ = Σ_{j=i−z..i+z} (dᵢ−dⱼ)
// for each candidate cut i ∈ [RMin, RMax] and cuts where sᵢ is maximal.
// sᵢ spikes on the first item after a density gap (its window still
// contains the far-below lower group), so displaying the items before
// the argmax shows exactly the lower group. The paper's "choose the
// data item with the highest sᵢ to be the last data item that is
// displayed" places the boundary at the same gap; we return the count
// of displayed items, i.e. the argmax index itself.
//
// The sums are computed incrementally — sᵢ₊₁ reuses the window sum of
// sᵢ — giving the O(z + rmax − rmin) complexity the paper notes instead
// of the naive O(z·(rmax−rmin)).
func GapCut(sorted []float64, opt GapOptions) int {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rmin, rmax := opt.RMin, opt.RMax
	if rmin < 1 {
		rmin = 1
	}
	if rmax <= 0 || rmax > n {
		rmax = n
	}
	if rmin > rmax {
		rmin = rmax
	}
	if rmin == rmax {
		return rmin
	}
	z := opt.Z
	if z <= 0 {
		z = (rmax - rmin) / 16
		if z < 3 {
			z = 3
		}
	}
	// Sliding window [max(0,i−z), min(n−1,i+z)] sum, advanced one item
	// per candidate.
	winLo := maxInt(0, rmin-z)
	winHi := minInt(n-1, rmin+z)
	var winSum float64
	for j := winLo; j <= winHi; j++ {
		winSum += sorted[j]
	}
	bestI, bestS := rmin, math.Inf(-1)
	for i := rmin; i <= rmax && i < n; i++ {
		if i > rmin {
			newLo := maxInt(0, i-z)
			newHi := minInt(n-1, i+z)
			for winLo < newLo {
				winSum -= sorted[winLo]
				winLo++
			}
			for winHi < newHi {
				winHi++
				winSum += sorted[winHi]
			}
		}
		size := float64(winHi - winLo + 1)
		s := size*sorted[i] - winSum
		if s > bestS {
			bestS, bestI = s, i
		}
	}
	return bestI
}

// Cut selects how many of the sorted distances to display: the
// α-quantile count for unimodal distance densities, the gap heuristic
// when the density within the quantile-selected range is multimodal
// (figure 2b). r is the distance-value budget, n = len(sorted),
// numPredicates the count of predicate windows.
func Cut(sorted []float64, r, numPredicates int) int {
	return CutPrefix(sorted, len(sorted), r, numPredicates)
}

// CutPrefix is Cut generalized to a partially-materialized ranking:
// prefix holds the smallest len(prefix) of n total sorted distances
// (the selection path materializes only the display budget instead of
// sorting all n values). The quantile count is computed from n; only
// the gap heuristic reads values, and it never looks past roughly
// 1.25× the display budget, so a prefix of that length yields exactly
// the same cut as the full sort. A shorter prefix degrades gracefully
// by clamping the examined margin.
func CutPrefix(prefix []float64, n, r, numPredicates int) int {
	if n > 0 && len(prefix) > n {
		prefix = prefix[:n]
	}
	p := DisplayFraction(r, n, numPredicates)
	k := QuantileCut(n, p)
	if k <= 4 || k > len(prefix) {
		return k
	}
	// Examine the would-be displayed prefix plus some margin; if its
	// values split into groups — a dominant gap between consecutive
	// sorted distances (figure 2b) — prefer the gap cut, bounded to
	// [k/2, k] so the user-requested budget is respected.
	margin := k + k/4
	if margin > n {
		margin = n
	}
	if margin > len(prefix) {
		margin = len(prefix)
	}
	pre := prefix[:margin]
	span := pre[len(pre)-1] - pre[0]
	var maxGap float64
	for i := 1; i < len(pre); i++ {
		if g := pre[i] - pre[i-1]; g > maxGap {
			maxGap = g
		}
	}
	if span > 0 && maxGap > 0.25*span {
		g := GapCut(prefix, GapOptions{RMin: maxInt(1, k/2), RMax: k})
		if g > 0 {
			return g
		}
	}
	return k
}

// SortWithIndex sorts a copy of dists ascending with NaNs pushed to the
// end, returning the sorted values and the permutation idx such that
// sorted[i] = dists[idx[i]]. This is the O(n log n) sort the paper says
// dominates query processing time.
func SortWithIndex(dists []float64) (sorted []float64, idx []int) {
	n := len(dists)
	idx = make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		da, db := dists[idx[a]], dists[idx[b]]
		aNaN, bNaN := math.IsNaN(da), math.IsNaN(db)
		switch {
		case aNaN && bNaN:
			return false
		case aNaN:
			return false // NaNs last
		case bNaN:
			return true
		default:
			return da < db
		}
	})
	sorted = make([]float64, n)
	for i, j := range idx {
		sorted[i] = dists[j]
	}
	return sorted, idx
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
