package reduce

import (
	"math"
	"math/rand"
	"testing"
)

func TestItems2DSelectsCentralBand(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 2000
	dx := make([]float64, n)
	dy := make([]float64, n)
	for i := range dx {
		dx[i] = rng.NormFloat64() * 10
		dy[i] = rng.NormFloat64() * 10
	}
	p := 0.25
	sel := Items2D(dx, dy, p)
	if len(sel) < int(0.2*float64(n)) || len(sel) > int(0.6*float64(n)) {
		t.Fatalf("selected %d of %d for p=%.2f", len(sel), n, p)
	}
	// Selected items are centrally banded: their |dx| and |dy| are
	// bounded by the unselected extremes.
	selSet := make(map[int]bool, len(sel))
	var maxSelX, maxSelY float64
	for _, i := range sel {
		selSet[i] = true
		maxSelX = math.Max(maxSelX, math.Abs(dx[i]))
		maxSelY = math.Max(maxSelY, math.Abs(dy[i]))
	}
	outliers := 0
	for i := range dx {
		if !selSet[i] && math.Abs(dx[i]) < maxSelX/4 && math.Abs(dy[i]) < maxSelY/4 {
			outliers++
		}
	}
	if outliers > n/50 {
		t.Fatalf("%d clearly-central items were not selected", outliers)
	}
}

func TestItems2DGrowsToTarget(t *testing.T) {
	// Anti-correlated dims: the naive √p×√p intersection is small, so
	// the growth loop must expand the bands.
	n := 1000
	dx := make([]float64, n)
	dy := make([]float64, n)
	for i := range dx {
		dx[i] = float64(i - n/2)
		dy[i] = float64(n/2 - i)
	}
	p := 0.5
	sel := Items2D(dx, dy, p)
	if len(sel) < int(p*float64(n))*8/10 {
		t.Fatalf("selected %d, want ≈%d", len(sel), int(p*float64(n)))
	}
}

func TestItems2DEdgeCases(t *testing.T) {
	if Items2D(nil, nil, 0.5) != nil {
		t.Error("empty")
	}
	if Items2D([]float64{1}, []float64{1, 2}, 0.5) != nil {
		t.Error("length mismatch")
	}
	if Items2D([]float64{1}, []float64{1}, 0) != nil {
		t.Error("p=0")
	}
	// All NaN.
	if got := Items2D([]float64{math.NaN()}, []float64{math.NaN()}, 0.5); got != nil {
		t.Errorf("all-NaN: %v", got)
	}
	// p > 1 clamps; everything finite selected.
	sel := Items2D([]float64{-1, 0, 1}, []float64{1, 0, -1}, 5)
	if len(sel) != 3 {
		t.Errorf("p>1: %v", sel)
	}
	// NaN items never selected.
	sel = Items2D([]float64{0, math.NaN()}, []float64{0, 0}, 1)
	if len(sel) != 1 || sel[0] != 0 {
		t.Errorf("NaN exclusion: %v", sel)
	}
}
