package reduce

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestDisplayFraction(t *testing.T) {
	// Figure 4's panel: 68,376 objects, 27,224 displayed ≈ 40 %. With a
	// 1,024×1,280 display and 3 predicates + 1 overall window + UI
	// overhead, the paper displays 27,224 items; check our formula gives
	// a fraction in that regime for the raw display budget.
	p := DisplayFraction(1024*1280, 68376, 3)
	if p < 0.99 { // 1.3M pixels / 4 windows ≈ 327k > 68k items → all fit
		t.Errorf("p = %v; full display should saturate at 1", p)
	}
	// A 256×256-per-window budget: r = 4·65536 over 4 windows.
	p = DisplayFraction(4*65536, 68376, 3)
	want := float64(4*65536) / (68376 * 4)
	if math.Abs(p-want) > 1e-12 {
		t.Errorf("p = %v, want %v", p, want)
	}
	if DisplayFraction(0, 100, 2) != 0 || DisplayFraction(100, 0, 2) != 0 {
		t.Error("degenerate inputs")
	}
	if DisplayFraction(100, 10, -5) != 1 {
		t.Error("negative predicate count should clamp")
	}
}

func TestPixelBudget(t *testing.T) {
	if PixelBudget(1024, 4) != 256 {
		t.Error("4 px per item")
	}
	if PixelBudget(1024, 0) != 1024 {
		t.Error("degenerate factor clamps to 1")
	}
}

func TestQuantileCut(t *testing.T) {
	if QuantileCut(100, 0.25) != 25 {
		t.Errorf("got %d", QuantileCut(100, 0.25))
	}
	if QuantileCut(0, 0.5) != 0 || QuantileCut(10, 0) != 0 || QuantileCut(10, 1) != 10 {
		t.Error("bounds")
	}
}

func TestSignedQuantileCut(t *testing.T) {
	// Symmetric signed distances: band should straddle zero.
	sorted := make([]float64, 100)
	for i := range sorted {
		sorted[i] = float64(i - 50) // -50..49
	}
	lo, hi := SignedQuantileCut(sorted, 0.2)
	if hi-lo < 18 || hi-lo > 22 {
		t.Fatalf("band size %d, want ≈20", hi-lo)
	}
	if !(sorted[lo] < 0 && sorted[hi-1] >= 0) {
		t.Errorf("band [%v, %v] should straddle zero", sorted[lo], sorted[hi-1])
	}
	// All positive: band starts at the bottom.
	pos := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	lo, hi = SignedQuantileCut(pos, 0.3)
	if lo != 0 || hi != 3 {
		t.Errorf("all-positive band [%d,%d)", lo, hi)
	}
	// Degenerate cases.
	if lo, hi := SignedQuantileCut(nil, 0.5); lo != 0 || hi != 0 {
		t.Error("empty")
	}
	if lo, hi := SignedQuantileCut(pos, 0); lo != 0 || hi != 0 {
		t.Error("p=0")
	}
	if lo, hi := SignedQuantileCut(pos, 1); lo != 0 || hi != len(pos) {
		t.Error("p=1")
	}
}

func TestGapCutFindsGap(t *testing.T) {
	// Two groups: 200 values near 1, 100 values near 100 (figure 2b).
	var dists []float64
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		dists = append(dists, 1+0.1*rng.Float64())
	}
	for i := 0; i < 100; i++ {
		dists = append(dists, 100+0.1*rng.Float64())
	}
	sort.Float64s(dists)
	cut := GapCut(dists, GapOptions{RMin: 50, RMax: 280, Z: 10})
	if cut < 195 || cut > 205 {
		t.Fatalf("cut = %d, want ≈200 (the inter-group gap)", cut)
	}
	// All displayed values come from the lower group.
	for i := 0; i < cut; i++ {
		if dists[i] > 50 {
			t.Fatalf("item %d (%v) from the upper group displayed", i, dists[i])
		}
	}
}

func TestGapCutBounds(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := GapCut(nil, GapOptions{}); got != 0 {
		t.Errorf("empty: %d", got)
	}
	got := GapCut(sorted, GapOptions{RMin: 3, RMax: 3})
	if got != 3 {
		t.Errorf("rmin==rmax: %d", got)
	}
	got = GapCut(sorted, GapOptions{RMin: -5, RMax: 1000})
	if got < 1 || got > len(sorted) {
		t.Errorf("clamped: %d", got)
	}
	// Defaults: z derived from range.
	got = GapCut(sorted, GapOptions{})
	if got < 1 || got > len(sorted) {
		t.Errorf("defaults: %d", got)
	}
}

// Property: GapCut always returns a count within [min(RMin,n), min(RMax,n)].
func TestGapCutRangeProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		rmin := int(a)%len(xs) + 1
		rmax := rmin + int(b)%len(xs)
		cut := GapCut(xs, GapOptions{RMin: rmin, RMax: rmax})
		lo := minInt(rmin, len(xs))
		hi := minInt(rmax, len(xs))
		return cut >= lo && cut <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGapCutIncrementalMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	dists := stats.SampleN(stats.Bimodal(0, 1, 50, 1), rng, 500)
	sort.Float64s(dists)
	opt := GapOptions{RMin: 20, RMax: 480, Z: 15}
	got := GapCut(dists, opt)
	// Naive recomputation of the same statistic.
	bestI, bestS := opt.RMin, math.Inf(-1)
	for i := opt.RMin; i <= opt.RMax && i < len(dists); i++ {
		var s float64
		lo, hi := maxInt(0, i-opt.Z), minInt(len(dists)-1, i+opt.Z)
		for j := lo; j <= hi; j++ {
			s += dists[i] - dists[j]
		}
		if s > bestS {
			bestS, bestI = s, i
		}
	}
	if got != bestI {
		t.Fatalf("incremental %d != naive %d", got, bestI)
	}
}

func TestCutUnimodalUsesQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dists := stats.SampleN(stats.Exponential{Rate: 1}, rng, 2000)
	sort.Float64s(dists)
	r := 500
	got := Cut(dists, r, 0)
	want := QuantileCut(len(dists), DisplayFraction(r, len(dists), 0))
	if got != want {
		t.Fatalf("unimodal cut %d, want quantile cut %d", got, want)
	}
}

func TestCutBimodalPrefersGap(t *testing.T) {
	// Lower group of 300 around 1, upper group of 1700 around 100. The
	// quantile cut for a 600-value budget would slice into the upper
	// group; the gap heuristic should stop at the lower group edge.
	rng := rand.New(rand.NewSource(12))
	var dists []float64
	for i := 0; i < 300; i++ {
		dists = append(dists, 1+0.2*rng.NormFloat64())
	}
	for i := 0; i < 1700; i++ {
		dists = append(dists, 100+0.2*rng.NormFloat64())
	}
	sort.Float64s(dists)
	got := Cut(dists, 600, 0)
	if got > 320 {
		t.Fatalf("bimodal cut %d should stop near the lower group (≈300)", got)
	}
	if got < 150 {
		t.Fatalf("bimodal cut %d suspiciously small", got)
	}
}

func TestCutTiny(t *testing.T) {
	if got := Cut([]float64{1, 2}, 1, 0); got != 1 {
		t.Errorf("tiny: %d", got)
	}
	if got := Cut(nil, 10, 0); got != 0 {
		t.Errorf("empty: %d", got)
	}
}

func TestSortWithIndex(t *testing.T) {
	dists := []float64{3, math.NaN(), 1, 2}
	sorted, idx := SortWithIndex(dists)
	if sorted[0] != 1 || sorted[1] != 2 || sorted[2] != 3 || !math.IsNaN(sorted[3]) {
		t.Fatalf("sorted: %v", sorted)
	}
	if idx[0] != 2 || idx[1] != 3 || idx[2] != 0 || idx[3] != 1 {
		t.Fatalf("idx: %v", idx)
	}
	// Original untouched.
	if dists[0] != 3 {
		t.Error("input mutated")
	}
}

// Property: SortWithIndex returns a permutation and ascending non-NaN
// prefix.
func TestSortWithIndexProperty(t *testing.T) {
	f := func(raw []float64) bool {
		sorted, idx := SortWithIndex(raw)
		if len(sorted) != len(raw) || len(idx) != len(raw) {
			return false
		}
		seen := make([]bool, len(raw))
		for i, j := range idx {
			if j < 0 || j >= len(raw) || seen[j] {
				return false
			}
			seen[j] = true
			si, dj := sorted[i], raw[j]
			if math.IsNaN(si) != math.IsNaN(dj) {
				return false
			}
			if !math.IsNaN(si) && si != dj {
				return false
			}
		}
		lastNonNaN := math.Inf(-1)
		sawNaN := false
		for _, v := range sorted {
			if math.IsNaN(v) {
				sawNaN = true
				continue
			}
			if sawNaN {
				return false // non-NaN after NaN
			}
			if v < lastNonNaN {
				return false
			}
			lastNonNaN = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
