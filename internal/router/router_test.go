package router

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/wire"
)

// stubNode fakes a visdbd member: a controllable /v1/health plus a
// recorder for every proxied request.
type stubNode struct {
	name string
	ts   *httptest.Server

	mu     sync.Mutex
	health wire.HealthResponse
	hits   []string
	// failing makes /v1/health answer 500 — a sick-but-listening node.
	failing bool
}

func newStubNode(t *testing.T, name string, shards int) *stubNode {
	t.Helper()
	n := &stubNode{name: name}
	n.health = wire.HealthResponse{Status: "ok", UptimeNS: 1, Shards: make([]wire.ShardHealth, shards)}
	for i := range n.health.Shards {
		n.health.Shards[i].Shard = i
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/health", func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		h, failing := n.health, n.failing
		n.mu.Unlock()
		if failing {
			http.Error(w, "dying", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		n.hits = append(n.hits, r.Method+" "+r.URL.Path)
		n.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"served_by": n.name})
	})
	n.ts = httptest.NewServer(mux)
	t.Cleanup(n.ts.Close)
	return n
}

func (n *stubNode) member() Member { return Member{Name: n.name, URL: n.ts.URL} }

func (n *stubNode) setSessions(shard, count int) {
	n.mu.Lock()
	n.health.Shards[shard].Sessions = count
	total := 0
	for _, sh := range n.health.Shards {
		total += sh.Sessions
	}
	n.health.Sessions = total
	n.mu.Unlock()
}

func (n *stubNode) setFailing(v bool) {
	n.mu.Lock()
	n.failing = v
	n.mu.Unlock()
}

func (n *stubNode) hitCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.hits)
}

// servedBy performs one GET through the router and reports which stub
// answered ("" with the error response decoded into code on a 503).
func servedBy(t *testing.T, rt *Router, path string) (string, string) {
	t.Helper()
	ts := httptest.NewServer(rt)
	defer ts.Close()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		ServedBy string `json:"served_by"`
		Code     string `json:"code"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.ServedBy, body.Code
}

// TestPlacementDeterministicAndMinimal: rendezvous placement is a
// pure function of the healthy-member set — identical across router
// instances — and removing one member moves ONLY that member's
// shards.
func TestPlacementDeterministicAndMinimal(t *testing.T) {
	const shards = 16
	members3 := []Member{
		{Name: "a", URL: "http://a"}, {Name: "b", URL: "http://b"}, {Name: "c", URL: "http://c"},
	}
	rt1, err := New(Config{Shards: shards, Members: members3})
	if err != nil {
		t.Fatal(err)
	}
	rt2, err := New(Config{Shards: shards, Members: members3})
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := rt1.Placement(), rt2.Placement()
	seen := make(map[string]int)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("placement not deterministic at shard %d: %q vs %q", i, p1[i], p2[i])
		}
		seen[p1[i]]++
	}
	if len(seen) != 3 {
		t.Fatalf("16 shards over 3 members used only %v", seen)
	}

	rt3, err := New(Config{Shards: shards, Members: members3[:2]})
	if err != nil {
		t.Fatal(err)
	}
	p3 := rt3.Placement()
	for i := range p1 {
		if p1[i] != "c" && p3[i] != p1[i] {
			t.Fatalf("shard %d moved %q → %q though its owner survived", i, p1[i], p3[i])
		}
		if p1[i] == "c" && (p3[i] != "a" && p3[i] != "b") {
			t.Fatalf("shard %d orphaned: %q", i, p3[i])
		}
	}
}

// TestRoutesByCatalogAndSessionID: creation routes by
// server.ShardOf(catalog), session requests by the ID's embedded
// shard index — both landing on the placement's owner.
func TestRoutesByCatalogAndSessionID(t *testing.T) {
	const shards = 4
	a, b := newStubNode(t, "a", shards), newStubNode(t, "b", shards)
	rt, err := New(Config{Shards: shards, Members: []Member{a.member(), b.member()}, FailAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	place := rt.Placement()
	ts := httptest.NewServer(rt)
	defer ts.Close()

	// "traffic" hashes to shard 2 (pinned by the server package's
	// golden test); its create must land on shard 2's owner.
	shard := server.ShardOf("traffic", shards)
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json",
		strings.NewReader(`{"catalog":"traffic","query":"SELECT a FROM S"}`))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ServedBy string `json:"served_by"`
	}
	json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	if created.ServedBy != place[shard] {
		t.Fatalf("create landed on %q, owner is %q", created.ServedBy, place[shard])
	}

	// A session ID names its shard directly.
	for shard := 0; shard < shards; shard++ {
		id := "s" + string(rune('0'+shard)) + ".9"
		got, _ := servedBy(t, rt, "/v1/sessions/"+id+"/results")
		if got != place[shard] {
			t.Fatalf("shard %d routed to %q, owner is %q", shard, got, place[shard])
		}
	}

	// Malformed IDs answer 404 without touching any member.
	before := a.hitCount() + b.hitCount()
	resp, err = http.Get(ts.URL + "/v1/sessions/bogus/results")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("malformed id: %d", resp.StatusCode)
	}
	if a.hitCount()+b.hitCount() != before {
		t.Fatal("malformed id was forwarded")
	}
}

// TestPassiveFailover: a transport failure during a forward marks the
// member down and reroutes BEFORE the node_down response is written,
// so the client's retry lands on the new owner.
func TestPassiveFailover(t *testing.T) {
	const shards = 8
	a, b := newStubNode(t, "a", shards), newStubNode(t, "b", shards)
	rt, err := New(Config{Shards: shards, Members: []Member{a.member(), b.member()}, FailAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Find a shard owned by b, then crash b.
	var bShard = -1
	for i, owner := range rt.Placement() {
		if owner == "b" {
			bShard = i
			break
		}
	}
	if bShard < 0 {
		t.Fatal("b owns nothing")
	}
	b.ts.Close()

	ts := httptest.NewServer(rt)
	defer ts.Close()
	id := "s" + string(rune('0'+bShard)) + ".1"
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	var e wire.ErrorResponse
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || e.Code != wire.CodeNodeDown {
		t.Fatalf("want 503 node_down, got %d %+v", resp.StatusCode, e)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("node_down without Retry-After")
	}
	// The flip already happened: every shard now routes to a, and the
	// retry succeeds.
	for i, owner := range rt.Placement() {
		if owner != "a" {
			t.Fatalf("shard %d still routed to %q after passive failover", i, owner)
		}
	}
	if got, _ := servedBy(t, rt, "/v1/sessions/"+id+"/results"); got != "a" {
		t.Fatalf("retry landed on %q", got)
	}
}

// TestDrainThenFlip: when placement moves a shard between two HEALTHY
// members (a member came back), the shard keeps routing to its old
// owner while that owner reports live sessions on it, then flips the
// moment the owner quiesces — and a stuck drain flips at the timeout.
func TestDrainThenFlip(t *testing.T) {
	const shards = 8
	ctx := context.Background()
	a, b := newStubNode(t, "a", shards), newStubNode(t, "b", shards)
	rt, err := New(Config{
		Shards: shards, Members: []Member{a.member(), b.member()},
		FailAfter: 1, DrainTimeout: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Kill b via probes: its shards flip to a immediately.
	b.ts.Close()
	rt.CheckNow(ctx)
	var moved []int
	for i, owner := range rt.Placement() {
		if owner != "a" {
			t.Fatalf("shard %d not on a after b died", i)
		}
		if rendezvousOwner(i, "a", "b") == "b" {
			moved = append(moved, i)
		}
	}
	if len(moved) == 0 {
		t.Fatal("b would own nothing; test proves nothing")
	}

	// a holds live sessions on one moved shard; b revives. The loaded
	// shard drains (still routed to a, target b), the idle ones flip
	// straight back.
	loaded := moved[0]
	a.setSessions(loaded, 3)
	b2 := newStubNode(t, "b", shards) // same name, new address
	rt2, err := New(Config{
		Shards: shards, Members: []Member{a.member(), b2.member()},
		FailAfter: 1, DrainTimeout: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Recreate the post-death state on rt2: b2 down, then revived.
	b2.setFailing(true)
	rt2.CheckNow(ctx)
	b2.setFailing(false)
	rt2.CheckNow(ctx)

	place, draining := rt2.Placement(), rt2.Draining()
	if place[loaded] != "a" || draining[loaded] != "b" {
		t.Fatalf("loaded shard %d: owner %q draining %v", loaded, place[loaded], draining)
	}
	for _, i := range moved[1:] {
		if place[i] != "b" {
			t.Fatalf("idle shard %d did not flip back: %q", i, place[i])
		}
	}

	// The owner quiesces → the next round flips.
	a.setSessions(loaded, 0)
	rt2.CheckNow(ctx)
	if p := rt2.Placement(); p[loaded] != "b" {
		t.Fatalf("quiesced shard %d still on %q", loaded, p[loaded])
	}
	if len(rt2.Draining()) != 0 {
		t.Fatalf("drains left: %v", rt2.Draining())
	}

	// Stuck drain: sessions never quiesce, but a short timeout forces
	// the flip.
	a.setSessions(loaded, 5)
	rt3, err := New(Config{
		Shards: shards, Members: []Member{a.member(), b2.member()},
		FailAfter: 1, DrainTimeout: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	b2.setFailing(true)
	rt3.CheckNow(ctx)
	b2.setFailing(false)
	rt3.CheckNow(ctx)
	if rt3.Placement()[loaded] != "a" {
		t.Fatal("drain flipped before its timeout")
	}
	time.Sleep(50 * time.Millisecond)
	rt3.CheckNow(ctx)
	if p := rt3.Placement(); p[loaded] != "b" {
		t.Fatalf("stuck drain never flipped: %q", p[loaded])
	}
}

// rendezvousOwner computes the standalone winner between two member
// names for a shard (test-side mirror of the placement rule).
func rendezvousOwner(shard int, names ...string) string {
	best, bestScore := "", uint64(0)
	for _, n := range names {
		s := rendezvous(shard, n)
		if best == "" || s > bestScore || (s == bestScore && n < best) {
			best, bestScore = n, s
		}
	}
	return best
}
