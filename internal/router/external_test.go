package router

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/session"
	"repro/visdb/client"
)

// TestExternalFleetReplay replays randomized interaction scripts
// against a REAL fleet — visdbrouter + visdbd processes + a visdbkv
// store, reached over plain HTTP — and asserts every step bitwise
// identical to fresh in-process engines over the same catalog data.
// It is the over-the-wire half of TestFleetReplayMatchesInProcess,
// driven by the CI fleet e2e step; without the environment it skips.
//
//	VISDB_FLEET_URL      router base URL (required)
//	VISDB_FLEET_SEG      path to the segment catalog every member serves
//	                     (unset: the members serve datagen.Traffic(rows, 1994)
//	                     with VISDB_FLEET_ROWS rows, default 2000)
//	VISDB_FLEET_CATALOGS catalog names to drive, comma-free count
//	                     (default 3: r0 r1 r2)
func TestExternalFleetReplay(t *testing.T) {
	base := os.Getenv("VISDB_FLEET_URL")
	if base == "" {
		t.Skip("VISDB_FLEET_URL not set; this runs in the CI fleet e2e step")
	}
	var cat *dataset.Catalog
	var err error
	if seg := os.Getenv("VISDB_FLEET_SEG"); seg != "" {
		cat, err = dataset.OpenCatalogFile(seg, dataset.OpenOptions{})
		if err != nil {
			t.Fatalf("open %s: %v", seg, err)
		}
		defer cat.Close()
	} else {
		rows := 2000
		if v := os.Getenv("VISDB_FLEET_ROWS"); v != "" {
			fmt.Sscanf(v, "%d", &rows)
		}
		if cat, err = datagen.Traffic(rows, 1994); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	c := client.New(base)
	c.Retry = &client.RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond}

	queries := datagen.TrafficQueries()
	const perCatalog, steps = 2, 6
	cats := 3
	for i := 0; i < cats; i++ {
		for k := 0; k < perCatalog; k++ {
			g := i*perCatalog + k
			catName := fmt.Sprintf("r%d", i)
			src := queries[g%len(queries)]
			rng := rand.New(rand.NewSource(500 + int64(g)))
			remote, _, err := c.NewSession(ctx, catName, src, client.Options{})
			if err != nil {
				t.Fatalf("session %d (%s): %v", g, catName, err)
			}
			mirror, err := session.NewSQL(cat, nil, fleetGrid, src)
			if err != nil {
				t.Fatal(err)
			}
			if err := compareFleet(ctx, fmt.Sprintf("session %d initial", g), remote, mirror, cat); err != nil {
				t.Fatal(err)
			}
			for step := 0; step < steps; step++ {
				op, ok := randomOp(rng, mirror, queries)
				if !ok {
					continue
				}
				if err := op.applyRemote(ctx, remote); err != nil {
					t.Fatalf("session %d step %d remote %s: %v", g, step, op.kind, err)
				}
				if err := op.applyMirror(mirror); err != nil {
					t.Fatalf("session %d step %d mirror %s: %v", g, step, op.kind, err)
				}
				if err := compareFleet(ctx, fmt.Sprintf("session %d step %d %s", g, step, op.kind), remote, mirror, cat); err != nil {
					t.Fatal(err)
				}
			}
			if err := remote.Close(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}

	// The fleet must be whole and sharing: every member healthy, work
	// carried between nodes through the kv tier.
	fleet, err := c.Fleet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range fleet.Members {
		if !m.Healthy {
			t.Fatalf("member %q unhealthy: %+v", m.Name, fleet.Members)
		}
	}
	if len(fleet.Members) < 3 {
		t.Fatalf("fleet has %d members, want >= 3", len(fleet.Members))
	}
	if fleet.SharedHitRate <= 0 {
		t.Fatalf("fleet shared nothing: %+v", fleet.Shared)
	}
	if fleet.Shared.RemoteHits == 0 || fleet.KV.Entries == 0 {
		t.Fatalf("kv tier idle: shared %+v kv %+v", fleet.Shared, fleet.KV)
	}
	t.Logf("external fleet: %d members, %d recalcs, shared-hit rate %.3f, remote hits %d, kv entries %d",
		len(fleet.Members), fleet.Recalcs, fleet.SharedHitRate, fleet.Shared.RemoteHits, fleet.KV.Entries)
}
