// Package router is the fleet front end of the serving stack: one
// stateless process that owns the catalog-shard placement map for a
// set of visdbd member nodes and proxies the whole serving protocol,
// so clients address the fleet as if it were one server.
//
// # Placement
//
// The unit of placement is the serving shard of internal/server:
// every member runs the same -shards N configuration with the same
// catalogs, so any member CAN serve any shard, and the router decides
// which member DOES. Shard i is routed to the healthy member winning
// rendezvous hashing (highest FNV-64a of "i|memberName") — placement
// is a pure function of the healthy-member set, so a restarted router
// recomputes the identical map, and removing one member moves only
// that member's shards (minimal movement).
//
// Requests route without any per-session state: a session ID embeds
// its shard ("s2.17" → shard 2, exactly as internal/server mints
// them), and session creation peeks the catalog name from the request
// body and applies server.ShardOf — the same hash every member
// applies internally, pinned by that package's golden test.
//
// # Health and failure
//
// A background loop probes every member's GET /v1/health. A member
// missing FailAfter consecutive probes is marked down and its shards
// flip immediately to their next rendezvous winners — its sessions
// died with it, so there is nothing to drain. Requests addressed to a
// down member's shard answer 503 with machine-readable code
// "node_down" and a Retry-After hint; the typed client retries such
// responses, and because the flip happened before the response was
// written, the retry lands on the new owner. Transport failures
// during proxying mark the member down synchronously (passive
// detection) with the same semantics, so a mid-request crash is
// detected at the first failed forward, not at the next probe.
//
// When a member comes BACK (or joins), placement changes while the
// old owner is still healthy: those shards drain instead of flipping
// — the shard keeps routing to its current owner (new sessions
// included) until the owner's health report shows zero live sessions
// on it, or the drain timeout expires. Draining preserves live
// sessions' state; the flip is taken when it is free (or overdue).
//
// Session IDs are per-process counters plus a per-instance random
// nonce ("s2.17-a1b2c3"), so a shard's IDs can never collide across a
// flip or a member restart: a stale ID presented to a new owner (or a
// restarted old owner) deterministically answers 404 with code
// "session_not_found", and clients recreate — client.FleetSession
// automates the recreate-and-replay. What the fleet DOES share across
// nodes is the cache tier: with a kv store attached (visdbd
// -shared-kv), the recreated session's recalculations are answered
// from the fleet's shared entries instead of recomputed.
//
// # Redundant routers
//
// The router keeps no durable state: placement is a pure function of
// the healthy-member set, so any number of router processes over the
// same fleet converge to the identical shard map as their probe loops
// agree on who is up — run two and clients fail over between them
// freely. Each router reports a placement hash (a digest of its
// shard→owner map) in /v1/health, /v1/fleet, and the
// X-Visdb-Placement-Epoch response header; equal hashes mean
// identical routing. The per-router placement epoch counts local
// placement changes and is not comparable across routers. Probe
// schedules carry jitter so N routers don't stampede members in
// lockstep.
//
// A member that comes back is re-admitted only after FailAfter
// consecutive clean probes (the same hysteresis that marks it down),
// so a flapping node can't yank its shards back and forth on every
// blip.
//
// # Endpoints
//
// The full serving protocol proxies through, plus fleet-level views:
//
//	POST   /v1/sessions           route by catalog → shard → owner
//	*      /v1/sessions/{id}/...  route by the ID's shard index
//	GET    /v1/catalogs           forwarded to any healthy member
//	GET    /v1/shards             per-shard stats from each shard's owner
//	GET    /v1/fleet              membership, placement, summed cache
//	                              counters, fleet shared-hit rate, kv stats
//	GET    /v1/health             router self-report: placement epoch +
//	                              hash, healthy member count
//	GET    /healthz               router liveness
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/kv"
	"repro/internal/server"
	"repro/internal/wire"
)

// Member declares one visdbd node.
type Member struct {
	// Name is the stable identity rendezvous hashing keys on; renaming
	// a member reshuffles its shards, re-addressing (URL change) does
	// not.
	Name string
	// URL is the node's base URL (e.g. "http://10.0.0.7:8491").
	URL string
}

// Config configures a Router.
type Config struct {
	// Shards is the fleet-wide serving shard count; every member must
	// run visdbd with the same value. 0 selects server.DefaultShards.
	Shards int
	// Members is the fleet. At least one is required.
	Members []Member
	// HealthInterval paces the background health loop; 0 selects 2s.
	HealthInterval time.Duration
	// ProbeTimeout bounds one health probe; 0 selects 1s.
	ProbeTimeout time.Duration
	// FailAfter is how many consecutive failed probes mark a member
	// down; 0 selects 2. Passive detection (a failed forward) marks
	// down immediately regardless.
	FailAfter int
	// DrainTimeout bounds how long a shard moving between two healthy
	// members keeps routing to its old owner waiting for its sessions
	// to quiesce; 0 selects 30s.
	DrainTimeout time.Duration
	// ProbeJitter spreads each health tick by a random fraction of
	// HealthInterval in [0, ProbeJitter), so N redundant routers drift
	// apart instead of stampeding every member in lockstep. 0 selects
	// DefaultProbeJitter; negative disables jitter; values above 1 are
	// rejected.
	ProbeJitter float64
	// KV is the shared store's base URL, used only to include its
	// counters in /v1/fleet; empty omits them.
	KV string
	// HTTP performs the proxied requests and probes; nil builds one
	// with sane timeouts.
	HTTP *http.Client
}

// Defaults for Config zero values.
const (
	DefaultHealthInterval = 2 * time.Second
	DefaultProbeTimeout   = 1 * time.Second
	DefaultFailAfter      = 2
	DefaultDrainTimeout   = 30 * time.Second
	DefaultProbeJitter    = 0.2

	// retryAfterNodeDown is the Retry-After hint on node_down
	// responses: the flip has already happened when the response is
	// written, so the hint only needs to cover client turnaround.
	retryAfterNodeDown = 1 * time.Second
	// retryAfterNoHealthy is the hint when the whole fleet is down:
	// nothing flips until a member recovers, so pace retries at the
	// health-check horizon rather than client turnaround.
	retryAfterNoHealthy = 2 * time.Second
)

// member is one node plus its router-side health state (guarded by
// Router.mu).
type member struct {
	name string
	url  string

	healthy bool
	fails   int
	// oks counts consecutive clean probes while down: re-admission
	// waits for FailAfter of them, mirroring the mark-down hysteresis,
	// so a flapping member can't reshuffle shards on every blip.
	oks int
	// health is the last successful probe's report (stale while down).
	health wire.HealthResponse
}

// shardRoute is one shard's routing state (guarded by Router.mu).
type shardRoute struct {
	// owner is the member requests route to; nil only when no member
	// is healthy.
	owner *member
	// target, when non-nil, is the drain destination: placement wants
	// the shard on target but owner still holds live sessions.
	target     *member
	drainStart time.Time
}

// Router implements http.Handler over the fleet.
type Router struct {
	cfg     Config
	http    *http.Client
	mux     *http.ServeMux
	members []*member
	started time.Time

	mu     sync.RWMutex
	shards []*shardRoute
	// placementHash digests the current shard→owner map; equal hashes
	// across routers mean identical routing. placementEpoch counts this
	// router's placement changes (local only — epochs of two routers
	// are not comparable; compare hashes).
	placementHash  uint64
	placementEpoch uint64
}

// New builds a router. Placement starts with every member presumed
// healthy (the first probe round corrects it); call Run to start the
// health loop.
func New(cfg Config) (*Router, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("router: no members configured")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = server.DefaultShards
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = DefaultHealthInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = DefaultFailAfter
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	switch {
	case cfg.ProbeJitter == 0:
		cfg.ProbeJitter = DefaultProbeJitter
	case cfg.ProbeJitter < 0:
		cfg.ProbeJitter = 0
	case cfg.ProbeJitter > 1:
		return nil, fmt.Errorf("router: probe jitter %v exceeds 1 (a full health interval)", cfg.ProbeJitter)
	}
	rt := &Router{cfg: cfg, http: cfg.HTTP, started: time.Now()}
	if rt.http == nil {
		rt.http = &http.Client{Timeout: 30 * time.Second}
	}
	seen := make(map[string]bool)
	seenURL := make(map[string]bool)
	for _, m := range cfg.Members {
		if m.Name == "" || m.URL == "" {
			return nil, fmt.Errorf("router: member needs a name and a URL")
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("router: duplicate member %q", m.Name)
		}
		u := strings.TrimRight(m.URL, "/")
		if seenURL[u] {
			return nil, fmt.Errorf("router: members %q and another share URL %s", m.Name, u)
		}
		seen[m.Name], seenURL[u] = true, true
		rt.members = append(rt.members, &member{name: m.Name, url: u, healthy: true})
	}
	rt.shards = make([]*shardRoute, cfg.Shards)
	for i := range rt.shards {
		rt.shards[i] = &shardRoute{}
	}
	rt.mu.Lock()
	rt.rebalanceLocked(time.Now())
	rt.mu.Unlock()

	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("POST /v1/sessions", rt.handleCreate)
	rt.mux.HandleFunc("/v1/sessions/{id}", rt.handleSession)
	rt.mux.HandleFunc("/v1/sessions/{id}/{op}", rt.handleSession)
	rt.mux.HandleFunc("GET /v1/catalogs", rt.handleCatalogs)
	rt.mux.HandleFunc("GET /v1/shards", rt.handleShards)
	rt.mux.HandleFunc("GET /v1/fleet", rt.handleFleet)
	rt.mux.HandleFunc("GET /v1/health", rt.handleHealth)
	rt.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return rt, nil
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// rendezvous scores member m for shard: FNV-64a of "shard|name".
func rendezvous(shard int, name string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", shard, name)
	return h.Sum64()
}

// placeLocked returns the healthy member winning shard's rendezvous
// election, nil when none is healthy. Ties (vanishingly unlikely)
// break on name order so every router instance agrees.
func (rt *Router) placeLocked(shard int) *member {
	var best *member
	var bestScore uint64
	for _, m := range rt.members {
		if !m.healthy {
			continue
		}
		s := rendezvous(shard, m.name)
		if best == nil || s > bestScore || (s == bestScore && m.name < best.name) {
			best, bestScore = m, s
		}
	}
	return best
}

// rebalanceLocked reconciles every shard's route with the current
// healthy-member placement. Dead or absent owners flip immediately
// (their sessions are gone); a move between two healthy members
// drains — the shard keeps routing to its owner until that owner
// reports zero live sessions on it, or the drain times out.
func (rt *Router) rebalanceLocked(now time.Time) {
	for i, sr := range rt.shards {
		want := rt.placeLocked(i)
		switch {
		case want == nil:
			// No healthy member: keep the stale owner pointer (requests
			// answer node_down) so a revival restores routing.
		case sr.owner == nil || !sr.owner.healthy:
			sr.owner, sr.target, sr.drainStart = want, nil, time.Time{}
		case want == sr.owner:
			sr.target, sr.drainStart = nil, time.Time{}
		default:
			// Move between two healthy members: drain.
			if sr.target != want {
				sr.target, sr.drainStart = want, now
			}
			quiesced := sr.owner.health.Status != "" && sessionsOn(sr.owner.health, i) == 0
			if quiesced || now.Sub(sr.drainStart) >= rt.cfg.DrainTimeout {
				sr.owner, sr.target, sr.drainStart = want, nil, time.Time{}
			}
		}
	}
	if h := rt.placementHashLocked(); h != rt.placementHash {
		rt.placementHash = h
		rt.placementEpoch++
	}
}

// placementHashLocked digests the shard→owner map. Two routers whose
// health views agree compute the same placement, hence the same hash —
// the machine-checkable convergence signal.
func (rt *Router) placementHashLocked() uint64 {
	h := fnv.New64a()
	for i, sr := range rt.shards {
		name := ""
		if sr.owner != nil {
			name = sr.owner.name
		}
		fmt.Fprintf(h, "%d=%s\n", i, name)
	}
	return h.Sum64()
}

// PlacementHash returns the current placement digest, formatted as 16
// hex digits (the form /v1/health and /v1/fleet report).
func (rt *Router) PlacementHash() string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return fmt.Sprintf("%016x", rt.placementHash)
}

// PlacementEpoch returns this router's local placement-change counter.
func (rt *Router) PlacementEpoch() uint64 {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.placementEpoch
}

// sessionsOn extracts shard's live session count from a health report.
func sessionsOn(h wire.HealthResponse, shard int) int {
	if shard < len(h.Shards) && h.Shards[shard].Shard == shard {
		return h.Shards[shard].Sessions
	}
	for _, sh := range h.Shards {
		if sh.Shard == shard {
			return sh.Sessions
		}
	}
	return 0
}

// probe fetches one member's health report (outside any lock).
func (rt *Router) probe(ctx context.Context, m *member) (wire.HealthResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/v1/health", nil)
	if err != nil {
		return wire.HealthResponse{}, err
	}
	resp, err := rt.http.Do(req)
	if err != nil {
		return wire.HealthResponse{}, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return wire.HealthResponse{}, fmt.Errorf("health: http %d", resp.StatusCode)
	}
	var h wire.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return wire.HealthResponse{}, err
	}
	return h, nil
}

// CheckNow runs one synchronous health round: probe every member,
// apply the results, rebalance. The background loop calls this on
// every tick; tests call it directly to advance fleet state
// deterministically.
func (rt *Router) CheckNow(ctx context.Context) {
	type result struct {
		m   *member
		h   wire.HealthResponse
		err error
	}
	results := make([]result, len(rt.members))
	var wg sync.WaitGroup
	for i, m := range rt.members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			h, err := rt.probe(ctx, m)
			results[i] = result{m: m, h: h, err: err}
		}(i, m)
	}
	wg.Wait()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, res := range results {
		if res.err != nil {
			res.m.fails++
			res.m.oks = 0
			if res.m.fails >= rt.cfg.FailAfter {
				res.m.healthy = false
			}
			continue
		}
		res.m.fails = 0
		res.m.health = res.h
		if !res.m.healthy {
			// Re-admission hysteresis: a downed member earns its shards
			// back only after FailAfter consecutive clean probes, so a
			// flapping node can't reshuffle placement on every blip.
			res.m.oks++
			if res.m.oks >= rt.cfg.FailAfter {
				res.m.healthy = true
				res.m.oks = 0
			}
		}
	}
	rt.rebalanceLocked(time.Now())
}

// Run drives the health loop until ctx is canceled. cmd/visdbrouter
// runs one for the daemon's lifetime. Each tick is stretched by a
// random fraction of the interval (Config.ProbeJitter) so redundant
// routers sharing a start time drift apart instead of probing every
// member in lockstep.
func (rt *Router) Run(ctx context.Context) {
	for {
		d := rt.cfg.HealthInterval
		if j := rt.cfg.ProbeJitter; j > 0 {
			d += time.Duration(rand.Float64() * j * float64(d))
		}
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
			rt.CheckNow(ctx)
		}
	}
}

// markDown records a passively-detected failure (a forward to m hit a
// transport error) and reroutes m's shards immediately, so the retry
// the caller is about to trigger lands on a live owner.
func (rt *Router) markDown(m *member) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	m.fails = rt.cfg.FailAfter
	m.oks = 0
	m.healthy = false
	rt.rebalanceLocked(time.Now())
}

// ownerOf resolves shard to its routing target.
func (rt *Router) ownerOf(shard int) (*member, error) {
	if shard < 0 || shard >= len(rt.shards) {
		return nil, fmt.Errorf("no shard %d", shard)
	}
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	sr := rt.shards[shard]
	if sr.owner == nil || !sr.owner.healthy {
		if !rt.anyHealthyLocked() {
			return nil, errNoHealthy
		}
		return nil, errNodeDown(sr.owner)
	}
	return sr.owner, nil
}

// anyHealthyLocked reports whether at least one member passes health
// checks; the caller holds mu (read or write).
func (rt *Router) anyHealthyLocked() bool {
	for _, m := range rt.members {
		if m.healthy {
			return true
		}
	}
	return false
}

// errNoHealthy marks the fleet-empty condition: no member passes
// health checks, so no placement exists anywhere — distinct from
// node_down, where the shard's owner died but the fleet lives on.
var errNoHealthy = errors.New("no healthy members: every fleet member is failing health checks")

// nodeDownError marks a shard whose owner is unreachable.
type nodeDownError struct{ name string }

func (e *nodeDownError) Error() string {
	if e.name == "" {
		return "no healthy member owns this shard"
	}
	return fmt.Sprintf("node %q is down; shard is being replaced", e.name)
}

func errNodeDown(m *member) error {
	if m == nil {
		return &nodeDownError{}
	}
	return &nodeDownError{name: m.name}
}

// writeJSON encodes v as the response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// setEpochHeader stamps the response with this router's placement
// epoch — clients and harnesses can watch it to observe failovers.
func (rt *Router) setEpochHeader(w http.ResponseWriter) {
	rt.mu.RLock()
	epoch := rt.placementEpoch
	rt.mu.RUnlock()
	w.Header().Set("X-Visdb-Placement-Epoch", strconv.FormatUint(epoch, 10))
}

// writeUnavailable answers a routing failure with its machine-readable
// code: no_healthy_members when the whole fleet is down (retry at the
// health-check horizon), node_down for a single dead owner (the flip
// already happened; retry immediately after the hint).
func (rt *Router) writeUnavailable(w http.ResponseWriter, err error) {
	code, after := wire.CodeNodeDown, retryAfterNodeDown
	if errors.Is(err, errNoHealthy) {
		code, after = wire.CodeNoHealthyMembers, retryAfterNoHealthy
	}
	rt.setEpochHeader(w)
	w.Header().Set("Retry-After", strconv.Itoa(int(after/time.Second)))
	writeJSON(w, http.StatusServiceUnavailable, wire.ErrorResponse{Error: err.Error(), Code: code})
}

// forward proxies the request (with body, already buffered or nil) to
// m and relays the response verbatim. A transport failure marks m
// down, reroutes, and answers node_down — by the time the client sees
// the 503, the flip has happened.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, m *member, body []byte) {
	u := m.url + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, rd)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, wire.ErrorResponse{Error: err.Error()})
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := rt.http.Do(req)
	if err != nil {
		if r.Context().Err() != nil {
			// The CLIENT went away (or timed out); the member is not to
			// blame, so don't fail it over.
			writeJSON(w, http.StatusGatewayTimeout, wire.ErrorResponse{Error: err.Error(), Code: wire.CodeCanceled})
			return
		}
		rt.markDown(m)
		rt.writeUnavailable(w, fmt.Errorf("forward to %q: %w", m.name, errNodeDown(m)))
		return
	}
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	rt.setEpochHeader(w)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// handleCreate peeks the catalog out of the creation body to compute
// its shard — the same server.ShardOf every member applies — then
// forwards the buffered body to the shard's owner.
func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, wire.ErrorResponse{Error: "bad request body"})
		return
	}
	var req wire.CreateSessionRequest
	if err := json.Unmarshal(body, &req); err != nil || req.Catalog == "" {
		writeJSON(w, http.StatusBadRequest, wire.ErrorResponse{Error: "bad request body: missing catalog"})
		return
	}
	shard := server.ShardOf(req.Catalog, rt.cfg.Shards)
	m, err := rt.ownerOf(shard)
	if err != nil {
		rt.writeUnavailable(w, err)
		return
	}
	rt.forward(w, r, m, body)
}

// handleSession routes a session request by the shard index embedded
// in its ID.
func (rt *Router) handleSession(w http.ResponseWriter, r *http.Request) {
	shard, err := shardOfID(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, wire.ErrorResponse{Error: err.Error()})
		return
	}
	m, err := rt.ownerOf(shard)
	if err != nil {
		rt.writeUnavailable(w, err)
		return
	}
	// Buffer the body (a few hundred bytes at most) so a passive
	// failover never replays a half-read stream.
	var body []byte
	if r.Body != nil {
		body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, wire.ErrorResponse{Error: "bad request body"})
			return
		}
		if len(body) == 0 {
			body = nil
		}
	}
	rt.forward(w, r, m, body)
}

// shardOfID parses the shard index out of a session ID ("s2.17" → 2).
func shardOfID(id string) (int, error) {
	if !strings.HasPrefix(id, "s") {
		return 0, fmt.Errorf("malformed session id %q", id)
	}
	dot := strings.IndexByte(id, '.')
	if dot < 0 {
		return 0, fmt.Errorf("malformed session id %q", id)
	}
	shard, err := strconv.Atoi(id[1:dot])
	if err != nil || shard < 0 {
		return 0, fmt.Errorf("session id %q names no shard", id)
	}
	return shard, nil
}

// handleCatalogs forwards to any healthy member — every member serves
// the same catalog set.
func (rt *Router) handleCatalogs(w http.ResponseWriter, r *http.Request) {
	rt.mu.RLock()
	var m *member
	for _, cand := range rt.members {
		if cand.healthy {
			m = cand
			break
		}
	}
	rt.mu.RUnlock()
	if m == nil {
		rt.writeUnavailable(w, errNoHealthy)
		return
	}
	rt.forward(w, r, m, nil)
}

// fetchShardStats fetches one member's /v1/shards (outside any lock).
func (rt *Router) fetchShardStats(ctx context.Context, m *member) ([]wire.ShardStats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/v1/shards", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shards: http %d", resp.StatusCode)
	}
	var out []wire.ShardStats
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// memberStats fans /v1/shards out to every healthy member and returns
// each one's per-shard stats by member name.
func (rt *Router) memberStats(ctx context.Context) map[string][]wire.ShardStats {
	rt.mu.RLock()
	var targets []*member
	for _, m := range rt.members {
		if m.healthy {
			targets = append(targets, m)
		}
	}
	rt.mu.RUnlock()
	out := make(map[string][]wire.ShardStats, len(targets))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, m := range targets {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			st, err := rt.fetchShardStats(ctx, m)
			if err != nil {
				return // a just-died member simply drops out of the view
			}
			mu.Lock()
			out[m.name] = st
			mu.Unlock()
		}(m)
	}
	wg.Wait()
	return out
}

// handleShards reports per-shard stats, each shard's row taken from
// its owning member — the fleet view a single-node /v1/shards caller
// expects.
func (rt *Router) handleShards(w http.ResponseWriter, r *http.Request) {
	stats := rt.memberStats(r.Context())
	rt.mu.RLock()
	out := make([]wire.ShardStats, len(rt.shards))
	for i, sr := range rt.shards {
		out[i] = wire.ShardStats{Shard: i, Catalogs: []string{}}
		if sr.owner == nil {
			continue
		}
		if st, ok := stats[sr.owner.name]; ok && i < len(st) {
			out[i] = st[i]
		}
	}
	rt.mu.RUnlock()
	writeJSON(w, http.StatusOK, out)
}

// handleFleet reports the whole fleet: membership, placement, the sum
// of every member's cache counters (remote tier included), the
// fleet-wide shared-hit rate, and the kv store's own stats when one
// is configured.
func (rt *Router) handleFleet(w http.ResponseWriter, r *http.Request) {
	stats := rt.memberStats(r.Context())
	rt.mu.RLock()
	out := wire.FleetStats{
		Shards:         len(rt.shards),
		PlacementEpoch: rt.placementEpoch,
		PlacementHash:  fmt.Sprintf("%016x", rt.placementHash),
	}
	owned := make(map[string][]int)
	for i, sr := range rt.shards {
		if sr.owner != nil {
			owned[sr.owner.name] = append(owned[sr.owner.name], i)
		}
	}
	for _, m := range rt.members {
		fm := wire.FleetMember{
			Name:     m.name,
			URL:      m.url,
			Healthy:  m.healthy,
			Shards:   owned[m.name],
			Sessions: m.health.Sessions,
		}
		if fm.Shards == nil {
			fm.Shards = []int{}
		}
		sort.Ints(fm.Shards)
		out.Members = append(out.Members, fm)
		if st, ok := stats[m.name]; ok {
			for _, sh := range st {
				out.Sessions += sh.Sessions
				out.Recalcs += sh.Recalcs
				out.Shared.Add(sh.Shared)
			}
		}
	}
	rt.mu.RUnlock()
	if total := out.Shared.Hits + out.Shared.Misses; total > 0 {
		out.SharedHitRate = float64(out.Shared.Hits) / float64(total)
	}
	if rt.cfg.KV != "" {
		if st, err := kv.NewClient(rt.cfg.KV).ServerStats(); err == nil {
			out.KV = wire.KVStats{Gets: st.Gets, Hits: st.Hits, Puts: st.Puts, Entries: st.Entries, Bytes: st.Bytes}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealth is the router's self-report — the shape a peer router,
// a load balancer, or the convergence harness polls: placement epoch
// and hash (equal hashes across routers mean identical routing),
// healthy-member count, and the fleet's live session total from the
// latest health reports.
func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	rt.mu.RLock()
	out := wire.HealthResponse{
		Status:         "ok",
		UptimeNS:       time.Since(rt.started).Nanoseconds(),
		PlacementEpoch: rt.placementEpoch,
		PlacementHash:  fmt.Sprintf("%016x", rt.placementHash),
	}
	for _, m := range rt.members {
		if m.healthy {
			out.HealthyMembers++
			out.Sessions += m.health.Sessions
		}
	}
	rt.mu.RUnlock()
	writeJSON(w, http.StatusOK, out)
}

// Placement snapshots the current shard→member routing (member names
// indexed by shard; "" for an unroutable shard). Tests and /v1/fleet
// consumers use it; the serving path never does.
func (rt *Router) Placement() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]string, len(rt.shards))
	for i, sr := range rt.shards {
		if sr.owner != nil {
			out[i] = sr.owner.name
		}
	}
	return out
}

// Draining reports which shards are currently draining toward a new
// owner (shard → target member name).
func (rt *Router) Draining() map[int]string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make(map[int]string)
	for i, sr := range rt.shards {
		if sr.target != nil {
			out[i] = sr.target.name
		}
	}
	return out
}
