package router

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/kv"
	"repro/internal/query"
	"repro/internal/relevance"
	"repro/internal/server"
	"repro/internal/session"
	"repro/visdb/client"
)

// The fleet harness: N visdbd-equivalent members (each behind a kill
// switch), one kv store, one router — the whole tentpole topology,
// in-process.

var fleetGrid = core.Options{GridW: 16, GridH: 16}

type fleetMember struct {
	name    string
	breaker *faultinject.Breaker
	url     string
}

type fleetEnv struct {
	shards   int
	kvStore  *kv.Server
	members  []*fleetMember
	catalogs map[string]*dataset.Catalog
	rt       *Router
	client   *client.Client
}

// newFleetEnv builds a fleet of `nodes` members all serving the same
// `cats` replica catalogs (identical data per name — the fleet
// invariant that makes the kv tier's structural keys shared), wired
// through one kv store and one router.
func newFleetEnv(t *testing.T, nodes, cats, rows int) *fleetEnv {
	t.Helper()
	env := &fleetEnv{shards: 8, kvStore: kv.NewServer(0, 0), catalogs: make(map[string]*dataset.Catalog)}
	kvTS := httptest.NewServer(env.kvStore)
	t.Cleanup(kvTS.Close)

	var catCfgs []server.CatalogConfig
	for i := 0; i < cats; i++ {
		name := fmt.Sprintf("r%d", i)
		// One seed for every catalog: the kv tier's keys are structural
		// (table identity + epoch, no catalog name), so every catalog
		// attached to one store MUST hold identical data — that is the
		// contract that lets replicas warm each other.
		cat, err := datagen.Traffic(rows, 1994)
		if err != nil {
			t.Fatal(err)
		}
		env.catalogs[name] = cat
		catCfgs = append(catCfgs, server.CatalogConfig{Name: name, Catalog: cat})
	}

	var members []Member
	for n := 0; n < nodes; n++ {
		name := string(rune('a' + n))
		// Every member gets its own shared tiers but the same catalog
		// data (read-only; safe to share the decoded arrays) and its own
		// kv client onto the one store.
		cfgs := make([]server.CatalogConfig, len(catCfgs))
		copy(cfgs, catCfgs)
		for i := range cfgs {
			cfgs[i].Shared = core.SharedOptions{AdmitMinCost: -1, Backend: kv.NewClient(kvTS.URL)}
		}
		srv, err := server.New(server.Config{Shards: env.shards, Catalogs: cfgs, DefaultOptions: fleetGrid})
		if err != nil {
			t.Fatal(err)
		}
		br := faultinject.NewBreaker(srv)
		ts := httptest.NewServer(br)
		t.Cleanup(ts.Close)
		env.members = append(env.members, &fleetMember{name: name, breaker: br, url: ts.URL})
		members = append(members, Member{Name: name, URL: ts.URL})
	}

	rt, err := New(Config{Shards: env.shards, Members: members, FailAfter: 1, DrainTimeout: time.Hour, KV: kvTS.URL})
	if err != nil {
		t.Fatal(err)
	}
	env.rt = rt
	rtTS := httptest.NewServer(rt)
	t.Cleanup(rtTS.Close)
	env.client = client.New(rtTS.URL)
	// Sleepless retries: the node-kill path exercises the real retry
	// loop without real backoff waits.
	env.client.Retry = &client.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		Sleep:       func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	}
	return env
}

// ownerOfCatalog reports which member currently serves a catalog.
func (env *fleetEnv) ownerOfCatalog(name string) string {
	return env.rt.Placement()[server.ShardOf(name, env.shards)]
}

// compareFleet asserts the remote session is bitwise identical —
// order, distances, relevances — to a fresh in-process engine run of
// the mirror's current query.
func compareFleet(ctx context.Context, step string, remote *client.Session, mirror *session.Session, cat *dataset.Catalog) error {
	fresh, err := core.New(cat, nil, fleetGrid).Run(mirror.Query())
	if err != nil {
		return fmt.Errorf("%s: fresh run: %w", step, err)
	}
	res, err := remote.Results(ctx, -1)
	if err != nil {
		return fmt.Errorf("%s: results: %w", step, err)
	}
	if res.Summary.N != fresh.N || res.Summary.Displayed != fresh.Displayed {
		return fmt.Errorf("%s: N %d vs %d, Displayed %d vs %d",
			step, res.Summary.N, fresh.N, res.Summary.Displayed, fresh.Displayed)
	}
	if len(res.Rows) != fresh.Displayed {
		return fmt.Errorf("%s: %d rows, want %d", step, len(res.Rows), fresh.Displayed)
	}
	for rank, row := range res.Rows {
		item := fresh.Order[rank]
		if row.Item != item {
			return fmt.Errorf("%s: order[%d] item %d vs %d", step, rank, row.Item, item)
		}
		d := fresh.Combined()[item]
		if math.Float64bits(row.Distance) != math.Float64bits(d) {
			return fmt.Errorf("%s: rank %d distance %v vs %v", step, rank, row.Distance, d)
		}
		if rel := relevance.RelevanceFactor(d); math.Float64bits(row.Relevance) != math.Float64bits(rel) {
			return fmt.Errorf("%s: rank %d relevance %v vs %v", step, rank, row.Relevance, rel)
		}
	}
	return nil
}

// fleetOp is one recorded interaction — the client-side operation log
// the node-kill recovery replays onto a recreated session.
type fleetOp struct {
	kind   string // "range", "weight", "query", "undo"
	attr   string
	lo, hi float64
	pred   int
	w      float64
	q      string
}

func (op fleetOp) applyRemote(ctx context.Context, s *client.Session) error {
	var err error
	switch op.kind {
	case "range":
		_, err = s.SetRange(ctx, op.attr, op.lo, op.hi)
	case "weight":
		_, err = s.SetWeight(ctx, op.pred, op.w)
	case "query":
		_, err = s.SetQuery(ctx, op.q)
	case "undo":
		_, err = s.Undo(ctx)
	}
	return err
}

func (op fleetOp) applyMirror(m *session.Session) error {
	switch op.kind {
	case "range":
		return m.SetRangeByAttr(op.attr, op.lo, op.hi)
	case "weight":
		preds := query.Predicates(m.Query().Where)
		return m.SetWeight(preds[op.pred], op.w)
	case "query":
		return m.SetQuery(op.q)
	case "undo":
		return m.Undo()
	case "pct":
		return m.SetPercentDisplayed(op.w)
	}
	return fmt.Errorf("unknown op %q", op.kind)
}

// randomOp draws one applicable interaction for the mirror's state.
func randomOp(rng *rand.Rand, mirror *session.Session, queries []string) (fleetOp, bool) {
	attrs := []string{"a", "b", "c"}
	switch c := rng.Intn(12); {
	case c < 5:
		attr := attrs[rng.Intn(len(attrs))]
		if _, err := mirror.FindCond(attr); err != nil {
			return fleetOp{}, false
		}
		lo := math.Floor(rng.Float64() * 80)
		hi := lo + math.Floor(rng.Float64()*40)
		switch rng.Intn(3) {
		case 0:
			hi = math.Inf(1)
		case 1:
			lo = math.Inf(-1)
		}
		return fleetOp{kind: "range", attr: attr, lo: lo, hi: hi}, true
	case c < 8:
		preds := query.Predicates(mirror.Query().Where)
		return fleetOp{kind: "weight", pred: rng.Intn(len(preds)), w: []float64{0.5, 1, 2, 3}[rng.Intn(4)]}, true
	case c < 10:
		return fleetOp{kind: "query", q: queries[rng.Intn(len(queries))]}, true
	default:
		if !mirror.CanUndo() {
			return fleetOp{}, false
		}
		return fleetOp{kind: "undo"}, true
	}
}

// TestFleetReplayMatchesInProcess is the tentpole identity property:
// many concurrent randomized sessions driven through the router
// across three member processes are bitwise identical to fresh
// in-process engines at every step, while the kv tier carries leaf
// work between the members (fleet shared-hit rate and remote hits
// both nonzero).
func TestFleetReplayMatchesInProcess(t *testing.T) {
	sessions, steps := 60, 6
	if testing.Short() {
		sessions, steps = 12, 4
	}
	env := newFleetEnv(t, 3, 3, 900)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	queries := datagen.TrafficQueries()

	// The replica catalogs must span at least two members, or the run
	// proves single-node serving, not a fleet.
	owners := make(map[string]bool)
	for name := range env.catalogs {
		owners[env.ownerOfCatalog(name)] = true
	}
	if len(owners) < 2 {
		t.Fatalf("degenerate placement: all catalogs on %v", owners)
	}

	const workers = 8
	errs := make([]error, sessions)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for g := 0; g < sessions; g++ {
		g := g
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; wg.Done() }()
			rng := rand.New(rand.NewSource(7000 + int64(g)))
			catName := fmt.Sprintf("r%d", g%len(env.catalogs))
			cat := env.catalogs[catName]
			src := queries[g%len(queries)]
			remote, _, err := env.client.NewSession(ctx, catName, src, client.Options{})
			if err != nil {
				errs[g] = fmt.Errorf("create: %w", err)
				return
			}
			defer remote.Close(ctx)
			mirror, err := session.NewSQL(cat, nil, fleetGrid, src)
			if err != nil {
				errs[g] = err
				return
			}
			if err := compareFleet(ctx, fmt.Sprintf("session %d initial", g), remote, mirror, cat); err != nil {
				errs[g] = err
				return
			}
			for step := 0; step < steps; step++ {
				op, ok := randomOp(rng, mirror, queries)
				if !ok {
					continue
				}
				if err := op.applyRemote(ctx, remote); err != nil {
					errs[g] = fmt.Errorf("session %d step %d remote %s: %w", g, step, op.kind, err)
					return
				}
				if err := op.applyMirror(mirror); err != nil {
					errs[g] = fmt.Errorf("session %d step %d mirror %s: %w", g, step, op.kind, err)
					return
				}
				if err := compareFleet(ctx, fmt.Sprintf("session %d step %d %s", g, step, op.kind), remote, mirror, cat); err != nil {
					errs[g] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", g, err)
		}
	}

	// The fleet view must show cross-node sharing: a nonzero fleet-wide
	// shared-hit rate AND kv-tier traffic (replica catalogs of the same
	// data produce identical structural keys on every member).
	fleet, err := env.client.Fleet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.SharedHitRate <= 0 {
		t.Fatalf("fleet shared-hit rate zero: %+v", fleet.Shared)
	}
	if fleet.Shared.RemoteHits == 0 || fleet.Shared.RemotePuts == 0 {
		t.Fatalf("kv tier carried nothing between nodes: %+v", fleet.Shared)
	}
	if fleet.KV.Puts == 0 || fleet.KV.Entries == 0 {
		t.Fatalf("kv store unused: %+v", fleet.KV)
	}
	if fleet.Recalcs == 0 {
		t.Fatalf("fleet recalcs: %+v", fleet)
	}
	t.Logf("fleet: %d sessions, %d recalcs, shared-hit rate %.3f, remote hits %d, kv entries %d",
		sessions, fleet.Recalcs, fleet.SharedHitRate, fleet.Shared.RemoteHits, fleet.KV.Entries)
}

// TestFleetNodeKillRecovers is the availability property: a member
// killed mid-run takes its sessions with it, but clients recover
// through the router — the failed forward marks the node down and
// reroutes, the recreated session replays its operation log on the
// new owner (warmed by the kv tier the dead node fed), and the final
// state is bitwise identical to the fault-free mirror with
// exactly-once application (recalc counters equal create + ops).
func TestFleetNodeKillRecovers(t *testing.T) {
	env := newFleetEnv(t, 3, 2, 900)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	queries := datagen.TrafficQueries()

	// The victim catalog's owner dies; the other catalog keeps serving
	// (possibly on another member) untouched.
	victimCat := "r0"
	cat := env.catalogs[victimCat]
	victim := env.ownerOfCatalog(victimCat)

	src := queries[2]
	remote, _, err := env.client.NewSession(ctx, victimCat, src, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := session.NewSQL(cat, nil, fleetGrid, src)
	if err != nil {
		t.Fatal(err)
	}

	// Scripted interaction with an operation log; the kill lands
	// between ops 3 and 4.
	rng := rand.New(rand.NewSource(41))
	var script []fleetOp
	for len(script) < 8 {
		if op, ok := randomOp(rng, mirror, queries); ok && op.kind != "undo" {
			script = append(script, op)
		}
	}

	applied := 0
	recreates := 0
	apply := func(op fleetOp) {
		t.Helper()
		err := op.applyRemote(ctx, remote)
		if err != nil {
			// The session died with its node (404 on the new owner after
			// the router's passive failover, or node_down if the flip is
			// still settling). Recreate on the current owner and replay
			// the log — creation routes by catalog, so it lands wherever
			// the shard lives NOW.
			var ae *client.APIError
			if !errors.As(err, &ae) {
				t.Fatalf("op %d (%s): %v", applied, op.kind, err)
			}
			recreates++
			fresh, _, cerr := env.client.NewSession(ctx, victimCat, src, client.Options{})
			if cerr != nil {
				t.Fatalf("recreate after %v: %v", err, cerr)
			}
			remote = fresh
			for i := 0; i < applied; i++ {
				if rerr := script[i].applyRemote(ctx, remote); rerr != nil {
					t.Fatalf("replay op %d: %v", i, rerr)
				}
			}
			if rerr := op.applyRemote(ctx, remote); rerr != nil {
				t.Fatalf("re-attempt op %d: %v", applied, rerr)
			}
		}
		applied++
		if merr := op.applyMirror(mirror); merr != nil {
			t.Fatalf("mirror op %d: %v", applied-1, merr)
		}
	}

	for i, op := range script {
		if i == 4 {
			// Kill the victim's node mid-run. No health loop is running:
			// recovery rides entirely on passive detection in the proxy
			// path plus client retries.
			for _, m := range env.members {
				if m.name == victim {
					m.breaker.Kill()
				}
			}
		}
		apply(op)
		if err := compareFleet(ctx, fmt.Sprintf("op %d %s", i, op.kind), remote, mirror, cat); err != nil {
			t.Fatal(err)
		}
	}
	if recreates == 0 {
		t.Fatal("the kill was never observed — the script proves nothing")
	}
	newOwner := env.ownerOfCatalog(victimCat)
	if newOwner == victim {
		t.Fatalf("shard still routed to the dead node %q", victim)
	}

	// Exactly-once: the recreated session applied create + every op
	// exactly once — its recalc counter matches the fault-free mirror's.
	sum, err := remote.Timings(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Recalcs != mirror.Recalcs {
		t.Fatalf("recalcs %d vs fault-free mirror %d — ops lost or double-applied", sum.Recalcs, mirror.Recalcs)
	}
	if want := 1 + len(script); mirror.Recalcs != want {
		t.Fatalf("mirror recalcs %d, want %d", mirror.Recalcs, want)
	}

	// Warm failover: the new owner's replay was fed by the kv entries
	// the dead node computed — visible as fleet-wide remote hits.
	fleet, err := env.client.Fleet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Shared.RemoteHits == 0 {
		t.Fatalf("failover recomputed everything; kv tier unused: %+v", fleet.Shared)
	}
	for _, m := range fleet.Members {
		if m.Name == victim && m.Healthy {
			t.Fatalf("dead member still marked healthy: %+v", fleet.Members)
		}
	}
	t.Logf("recovered via %d recreate(s): %s -> %s, remote hits %d",
		recreates, victim, newOwner, fleet.Shared.RemoteHits)
}
