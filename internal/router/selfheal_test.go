package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/kv"
	"repro/internal/relevance"
	"repro/internal/server"
	"repro/internal/session"
	"repro/internal/wire"
	"repro/visdb/client"
)

// The self-healing harness: restartable members (a restart is a FRESH
// server process — new session nonce, empty session table), a kv
// store behind a partition switch, and TWO redundant routers, each
// behind its own kill switch.

// healMember is a fleet member whose process can die and come back as
// a genuinely new instance.
type healMember struct {
	name  string
	url   string
	br    *faultinject.Breaker
	cur   atomic.Pointer[server.Server]
	build func() (*server.Server, error)
}

// restart swaps in a freshly constructed server (losing every session,
// minting a new ID nonce) and revives the member's listener.
func (m *healMember) restart(t *testing.T) {
	t.Helper()
	srv, err := m.build()
	if err != nil {
		t.Fatalf("restart %s: %v", m.name, err)
	}
	m.cur.Store(srv)
	m.br.Revive()
}

type healEnv struct {
	shards     int
	kvStore    *kv.Server
	kvBr       *faultinject.Breaker
	gate       *faultinject.LatencyGate
	members    []*healMember
	routers    []*Router
	routerBr   []*faultinject.Breaker
	routerURLs []string
	clients    []*client.Client
	catalogs   map[string]*dataset.Catalog
}

// newHealEnv builds nodes restartable members serving cats replica
// catalogs, one partitionable kv store, and nRouters independent
// routers over the same member list.
func newHealEnv(t *testing.T, nodes, nRouters, cats, rows, failAfter int) *healEnv {
	t.Helper()
	env := &healEnv{
		shards:   8,
		kvStore:  kv.NewServer(0, 0),
		gate:     &faultinject.LatencyGate{},
		catalogs: make(map[string]*dataset.Catalog),
	}
	env.kvBr = faultinject.NewBreaker(env.kvStore)
	kvTS := httptest.NewServer(env.kvBr)
	t.Cleanup(kvTS.Close)

	names := make([]string, 0, cats)
	for i := 0; i < cats; i++ {
		name := fmt.Sprintf("r%d", i)
		cat, err := datagen.Traffic(rows, 1994)
		if err != nil {
			t.Fatal(err)
		}
		env.catalogs[name] = cat
		names = append(names, name)
	}

	var members []Member
	for n := 0; n < nodes; n++ {
		m := &healMember{name: string(rune('a' + n))}
		m.build = func() (*server.Server, error) {
			var cfgs []server.CatalogConfig
			for _, name := range names {
				// A fresh kv client per incarnation: a restarted process
				// starts with a closed breaker, exactly like a real reboot.
				kvc := kv.NewClient(kvTS.URL)
				kvc.BreakerThreshold = 2
				kvc.BreakerCooldown = 10 * time.Millisecond
				cfgs = append(cfgs, server.CatalogConfig{
					Name: name, Catalog: env.catalogs[name],
					Shared: core.SharedOptions{AdmitMinCost: -1, Backend: kvc},
				})
			}
			return server.New(server.Config{
				Shards: env.shards, Catalogs: cfgs, DefaultOptions: fleetGrid,
				FaultHook: func(*http.Request) *server.Fault {
					if d := env.gate.Delay(); d > 0 {
						return &server.Fault{Delay: d}
					}
					return nil
				},
			})
		}
		srv, err := m.build()
		if err != nil {
			t.Fatal(err)
		}
		m.cur.Store(srv)
		m.br = faultinject.NewBreaker(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			m.cur.Load().ServeHTTP(w, r)
		}))
		ts := httptest.NewServer(m.br)
		t.Cleanup(ts.Close)
		m.url = ts.URL
		env.members = append(env.members, m)
		members = append(members, Member{Name: m.name, URL: ts.URL})
	}

	for r := 0; r < nRouters; r++ {
		rt, err := New(Config{
			Shards: env.shards, Members: members,
			FailAfter: failAfter, DrainTimeout: time.Hour, KV: kvTS.URL,
		})
		if err != nil {
			t.Fatal(err)
		}
		br := faultinject.NewBreaker(rt)
		ts := httptest.NewServer(br)
		t.Cleanup(ts.Close)
		c := client.New(ts.URL)
		c.Retry = &client.RetryPolicy{
			MaxAttempts: 4,
			BaseDelay:   time.Millisecond,
			Sleep:       func(ctx context.Context, d time.Duration) error { return ctx.Err() },
		}
		env.routers = append(env.routers, rt)
		env.routerBr = append(env.routerBr, br)
		env.routerURLs = append(env.routerURLs, ts.URL)
		env.clients = append(env.clients, c)
	}
	return env
}

// applyChaos executes one scripted fault against the live topology.
func (env *healEnv) applyChaos(t *testing.T, e faultinject.ChaosEvent) {
	t.Helper()
	switch e.Action {
	case faultinject.KillMember:
		env.members[e.Target].br.Kill()
	case faultinject.RestartMember:
		env.members[e.Target].restart(t)
	case faultinject.PartitionKV:
		env.kvBr.Kill()
	case faultinject.HealKV:
		env.kvBr.Revive()
	case faultinject.KillRouter:
		env.routerBr[e.Target].Kill()
	case faultinject.ReviveRouter:
		env.routerBr[e.Target].Revive()
	case faultinject.AddLatency:
		env.gate.Set(e.Latency)
	case faultinject.ClearLatency:
		env.gate.Set(0)
	default:
		t.Fatalf("unknown chaos action %v", e)
	}
}

// checkConverged probes every member from every router and asserts the
// redundant control plane agrees on the full placement.
func (env *healEnv) checkConverged(t *testing.T, ctx context.Context, step string) {
	t.Helper()
	for _, rt := range env.routers {
		rt.CheckNow(ctx)
	}
	h0 := env.routers[0].PlacementHash()
	for i, rt := range env.routers[1:] {
		if h := rt.PlacementHash(); h != h0 {
			t.Fatalf("%s: router 0 placement %s, router %d placement %s\n0: %v\n%d: %v",
				step, h0, i+1, h, env.routers[0].Placement(), i+1, rt.Placement())
		}
	}
}

// applyFleet drives one recorded interaction through a self-healing
// FleetSession.
func (op fleetOp) applyFleet(ctx context.Context, fs *client.FleetSession) error {
	var err error
	switch op.kind {
	case "range":
		_, err = fs.SetRange(ctx, op.attr, op.lo, op.hi)
	case "weight":
		_, err = fs.SetWeight(ctx, op.pred, op.w)
	case "query":
		_, err = fs.SetQuery(ctx, op.q)
	case "undo":
		_, err = fs.Undo(ctx)
	case "pct":
		_, err = fs.SetPercentDisplayed(ctx, op.w)
	}
	return err
}

// comparePct is compareFleet for sessions that may have moved the
// percentage-displayed slider: the fresh engine gets the session's
// current pct so Displayed and normalization match bitwise.
func comparePct(step string, res client.Results, mirror *session.Session, cat *dataset.Catalog, pct float64) error {
	opts := fleetGrid
	opts.PercentDisplayed = pct
	fresh, err := core.New(cat, nil, opts).Run(mirror.Query())
	if err != nil {
		return fmt.Errorf("%s: fresh run: %w", step, err)
	}
	if res.Summary.N != fresh.N || res.Summary.Displayed != fresh.Displayed {
		return fmt.Errorf("%s: N %d vs %d, Displayed %d vs %d",
			step, res.Summary.N, fresh.N, res.Summary.Displayed, fresh.Displayed)
	}
	if len(res.Rows) != fresh.Displayed {
		return fmt.Errorf("%s: %d rows, want %d", step, len(res.Rows), fresh.Displayed)
	}
	for rank, row := range res.Rows {
		item := fresh.Order[rank]
		if row.Item != item {
			return fmt.Errorf("%s: order[%d] item %d vs %d", step, rank, row.Item, item)
		}
		d := fresh.Combined()[item]
		if math.Float64bits(row.Distance) != math.Float64bits(d) {
			return fmt.Errorf("%s: rank %d distance %v vs %v", step, rank, row.Distance, d)
		}
		if rel := relevance.RelevanceFactor(d); math.Float64bits(row.Relevance) != math.Float64bits(rel) {
			return fmt.Errorf("%s: rank %d relevance %v vs %v", step, rank, row.Relevance, rel)
		}
	}
	return nil
}

// TestFleetChaosSoakSelfHeals is the tentpole soak: a seeded chaos
// script kills and restarts members, partitions the kv store, flaps a
// router, and injects latency, while FleetSessions keep mutating
// through whichever router answers. The bar: ZERO caller-visible
// errors, bitwise identity with fault-free in-process engines at
// every checkpoint, exactly-once recalc counts, and at least one
// automatic session recovery (or the soak proved nothing).
func TestFleetChaosSoakSelfHeals(t *testing.T) {
	// One fixed seed, one fixed script: a failure anywhere reproduces
	// bit-for-bit from this constant. The final recoveries>0 assertion
	// guards the seed itself — a reshuffle that stops killing session
	// owners fails loudly instead of hollowing the test out.
	const seed = 1994
	const steps = 18
	env := newHealEnv(t, 3, 2, 2, 600, 1)
	script := faultinject.GenerateChaosScript(seed, steps, len(env.members), len(env.routers))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	queries := datagen.TrafficQueries()

	env.checkConverged(t, ctx, "bootstrap")

	type soakSession struct {
		fs     *client.FleetSession
		mirror *session.Session
		cat    *dataset.Catalog
		rng    *rand.Rand
		pct    float64
		ops    int
	}
	var sessions []*soakSession
	for g := 0; g < 3; g++ {
		catName := fmt.Sprintf("r%d", g%len(env.catalogs))
		src := queries[g%len(queries)]
		// Each session starts on a different router; recovery is free to
		// rotate between them.
		endpoints := []*client.Client{env.clients[g%2], env.clients[(g+1)%2]}
		fs, _, err := client.NewFleetSession(ctx, endpoints, catName, src,
			client.FleetOptions{MaxRecoveries: 32})
		if err != nil {
			t.Fatalf("session %d create: %v", g, err)
		}
		mirror, err := session.NewSQL(env.catalogs[catName], nil, fleetGrid, src)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, &soakSession{
			fs: fs, mirror: mirror, cat: env.catalogs[catName],
			rng: rand.New(rand.NewSource(9000 + int64(g))),
		})
	}

	for step := 0; step < script.Steps; step++ {
		for _, e := range script.At(step) {
			env.applyChaos(t, e)
		}
		env.checkConverged(t, ctx, fmt.Sprintf("step %d", step))

		for g, ss := range sessions {
			var op fleetOp
			if step%6 == 5 {
				// Exercise the pct slider too — the one op class whose
				// normalization the fresh-engine comparison must track.
				op = fleetOp{kind: "pct", w: []float64{0.5, 0.8, 1}[(step/6)%3]}
			} else {
				var ok bool
				if op, ok = randomOp(ss.rng, ss.mirror, queries); !ok {
					continue
				}
			}
			if err := op.applyFleet(ctx, ss.fs); err != nil {
				t.Fatalf("step %d session %d %s: caller-visible error: %v", step, g, op.kind, err)
			}
			if err := op.applyMirror(ss.mirror); err != nil {
				t.Fatalf("step %d session %d mirror %s: %v", step, g, op.kind, err)
			}
			if op.kind == "pct" {
				ss.pct = op.w
			}
			ss.ops++
			if step%3 == 2 {
				res, err := ss.fs.Results(ctx, -1)
				if err != nil {
					t.Fatalf("step %d session %d results: %v", step, g, err)
				}
				if err := comparePct(fmt.Sprintf("step %d session %d", step, g), res, ss.mirror, ss.cat, ss.pct); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	// The script's heal tail restored everything; a couple more probe
	// rounds and the fleet must be whole again.
	env.checkConverged(t, ctx, "post-soak")
	env.checkConverged(t, ctx, "post-soak settle")
	var hr wire.HealthResponse
	if err := getJSON(t, env.routerURLs[0]+"/v1/health", &hr); err != nil {
		t.Fatal(err)
	}
	if hr.HealthyMembers != len(env.members) {
		t.Fatalf("post-soak healthy members %d of %d", hr.HealthyMembers, len(env.members))
	}
	if hr.PlacementHash != env.routers[0].PlacementHash() {
		t.Fatalf("/v1/health placement %s vs %s", hr.PlacementHash, env.routers[0].PlacementHash())
	}

	var recoveries uint64
	for g, ss := range sessions {
		res, err := ss.fs.Results(ctx, -1)
		if err != nil {
			t.Fatalf("final results session %d: %v", g, err)
		}
		if err := comparePct(fmt.Sprintf("final session %d", g), res, ss.mirror, ss.cat, ss.pct); err != nil {
			t.Fatal(err)
		}
		// Exactly-once: the surviving incarnation holds creation + every
		// acknowledged op exactly once, matching the fault-free mirror.
		sum, err := ss.fs.Timings(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Recalcs != ss.mirror.Recalcs {
			t.Fatalf("session %d recalcs %d vs fault-free mirror %d — ops lost or double-applied",
				g, sum.Recalcs, ss.mirror.Recalcs)
		}
		recoveries += ss.fs.Recoveries()
		if err := ss.fs.Close(ctx); err != nil {
			t.Fatalf("close session %d: %v", g, err)
		}
	}
	if recoveries == 0 {
		t.Fatalf("seed %d killed no session owner — the soak proved nothing; pick a better seed", seed)
	}
	t.Logf("soak: %d steps, %d chaos events, %d automatic recoveries, zero errors",
		script.Steps, len(script.Events), recoveries)
}

// getJSON fetches url and decodes the response body into v.
func getJSON(t *testing.T, url string, v any) error {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d", url, resp.StatusCode)
	}
	return decodeBody(resp.Body, v)
}

// decodeBody JSON-decodes r into v.
func decodeBody(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}

// TestTwoRoutersConvergeThroughRejoin walks the full membership cycle
// — healthy, member killed, member restarted, drain-back — asserting
// at EVERY transition that both routers compute identical placements,
// and that an in-flight session survives the rejoin via drain.
func TestTwoRoutersConvergeThroughRejoin(t *testing.T) {
	env := newHealEnv(t, 3, 2, 2, 600, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rtA, rtB := env.routers[0], env.routers[1]
	queries := datagen.TrafficQueries()

	env.checkConverged(t, ctx, "bootstrap")
	epoch0 := rtA.PlacementEpoch()

	// A session on r0; its owner is the victim.
	victimCat := "r0"
	shard := server.ShardOf(victimCat, env.shards)
	victim := rtA.Placement()[shard]
	fs, _, err := client.NewFleetSession(ctx, env.clients, victimCat, queries[1], client.FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := session.NewSQL(env.catalogs[victimCat], nil, fleetGrid, queries[1])
	if err != nil {
		t.Fatal(err)
	}

	// Kill the owner. FailAfter is 2: the first probe round must NOT
	// evict (one strike), the second must — on both routers.
	for _, m := range env.members {
		if m.name == victim {
			m.br.Kill()
		}
	}
	env.checkConverged(t, ctx, "one strike")
	if rtA.Placement()[shard] != victim {
		t.Fatal("a single failed probe evicted the member (FailAfter 2)")
	}
	env.checkConverged(t, ctx, "two strikes")
	interim := rtA.Placement()[shard]
	if interim == victim {
		t.Fatalf("shard %d still on dead member %q", shard, victim)
	}
	if rtA.PlacementEpoch() == epoch0 {
		t.Fatal("placement changed but epoch did not advance")
	}

	// The session died with its node; the next op transparently
	// recreates it on the interim owner.
	op := fleetOp{kind: "range", attr: "a", lo: 10, hi: 60}
	if err := op.applyFleet(ctx, fs); err != nil {
		t.Fatalf("op after kill: %v", err)
	}
	if err := op.applyMirror(mirror); err != nil {
		t.Fatal(err)
	}
	if fs.Recoveries() != 1 {
		t.Fatalf("recoveries %d, want 1", fs.Recoveries())
	}

	// The victim restarts as a fresh process. Hysteresis: one clean
	// probe round must NOT re-admit it, the second must — and because
	// the interim owner holds a live session on the shard, it DRAINS
	// (stays routed to the interim owner) instead of flipping.
	for _, m := range env.members {
		if m.name == victim {
			m.restart(t)
		}
	}
	env.checkConverged(t, ctx, "one clean probe")
	if rtA.Placement()[shard] != interim {
		t.Fatal("a single clean probe re-admitted the member (FailAfter 2)")
	}
	env.checkConverged(t, ctx, "re-admitted")
	place, drain := rtA.Placement(), rtA.Draining()
	if place[shard] != interim || drain[shard] != victim {
		t.Fatalf("rejoin: shard %d owner %q drain %v — want draining %s→%s",
			shard, place[shard], drain, interim, victim)
	}
	placeB, drainB := rtB.Placement(), rtB.Draining()
	if placeB[shard] != place[shard] || drainB[shard] != drain[shard] {
		t.Fatalf("routers disagree on drain: A %q→%q, B %q→%q",
			place[shard], drain[shard], placeB[shard], drainB[shard])
	}

	// In-flight survival: the draining session keeps serving without
	// another recovery.
	op2 := fleetOp{kind: "weight", pred: 0, w: 2}
	if err := op2.applyFleet(ctx, fs); err != nil {
		t.Fatalf("op during drain: %v", err)
	}
	if err := op2.applyMirror(mirror); err != nil {
		t.Fatal(err)
	}
	if fs.Recoveries() != 1 {
		t.Fatalf("drain forced a recovery: %d", fs.Recoveries())
	}
	res, err := fs.Results(ctx, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := comparePct("during drain", res, mirror, env.catalogs[victimCat], 0); err != nil {
		t.Fatal(err)
	}

	// The session closes; the drained shard flips back to the rejoined
	// member on the next round — on both routers.
	if err := fs.Close(ctx); err != nil {
		t.Fatal(err)
	}
	env.checkConverged(t, ctx, "drain-back")
	if p := rtA.Placement(); p[shard] != victim {
		t.Fatalf("shard %d never drained back: %q", shard, p[shard])
	}
	if len(rtA.Draining()) != 0 || len(rtB.Draining()) != 0 {
		t.Fatalf("drains left: A %v B %v", rtA.Draining(), rtB.Draining())
	}
}

// TestReadmissionHysteresis pins the flap protection: a member that
// alternates good and bad probes never rejoins, because every failure
// resets the clean-probe counter.
func TestReadmissionHysteresis(t *testing.T) {
	const shards = 8
	ctx := context.Background()
	a, b := newStubNode(t, "a", shards), newStubNode(t, "b", shards)
	rt, err := New(Config{Shards: shards, Members: []Member{a.member(), b.member()}, FailAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	bOwns := func() bool {
		for _, owner := range rt.Placement() {
			if owner == "b" {
				return true
			}
		}
		return false
	}
	if !bOwns() {
		t.Fatal("b owns nothing; test proves nothing")
	}

	b.setFailing(true)
	rt.CheckNow(ctx)
	if !bOwns() {
		t.Fatal("one strike evicted b")
	}
	rt.CheckNow(ctx)
	if bOwns() {
		t.Fatal("two strikes did not evict b")
	}

	// Flap: ok, fail, ok, fail… never two clean rounds in a row, never
	// re-admitted.
	for i := 0; i < 4; i++ {
		b.setFailing(i%2 == 1)
		rt.CheckNow(ctx)
		if bOwns() {
			t.Fatalf("flapping member re-admitted at round %d", i)
		}
	}

	// Two consecutive clean rounds re-admit.
	b.setFailing(false)
	rt.CheckNow(ctx)
	if bOwns() {
		t.Fatal("one clean round re-admitted b")
	}
	rt.CheckNow(ctx)
	if !bOwns() {
		t.Fatal("two clean rounds did not re-admit b")
	}
}

// TestNoHealthyMembers pins the whole-fleet-down contract: 503 with
// the no_healthy_members code, a Retry-After hint, and the placement
// epoch header (so a recovering client can tell the world changed).
func TestNoHealthyMembers(t *testing.T) {
	const shards = 4
	ctx := context.Background()
	a := newStubNode(t, "a", shards)
	rt, err := New(Config{Shards: shards, Members: []Member{a.member()}, FailAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	a.setFailing(true)
	rt.CheckNow(ctx)

	ts := httptest.NewServer(rt)
	defer ts.Close()
	for _, path := range []string{"/v1/sessions/s1.9/results", "/v1/catalogs"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var e wire.ErrorResponse
		decodeBody(resp.Body, &e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable || e.Code != wire.CodeNoHealthyMembers {
			t.Fatalf("%s: want 503 no_healthy_members, got %d %+v", path, resp.StatusCode, e)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s: no Retry-After", path)
		}
		if resp.Header.Get("X-Visdb-Placement-Epoch") == "" {
			t.Fatalf("%s: no placement-epoch header", path)
		}
	}

	// The member heals: service resumes and forwards carry the epoch
	// header too.
	a.setFailing(false)
	rt.CheckNow(ctx)
	resp, err := http.Get(ts.URL + "/v1/sessions/s1.9/results")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after heal: %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Visdb-Placement-Epoch") == "" {
		t.Fatal("forwarded response missing placement-epoch header")
	}
}

// TestRouterConfigValidation pins the hardening: duplicate member
// URLs and out-of-range probe jitter are rejected at construction.
func TestRouterConfigValidation(t *testing.T) {
	base := []Member{{Name: "a", URL: "http://n1"}, {Name: "b", URL: "http://n2"}}
	if _, err := New(Config{Shards: 4, Members: base}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	dup := []Member{{Name: "a", URL: "http://n1"}, {Name: "b", URL: "http://n1"}}
	if _, err := New(Config{Shards: 4, Members: dup}); err == nil {
		t.Fatal("duplicate member URL accepted")
	}
	if _, err := New(Config{Shards: 4, Members: base, ProbeJitter: 1.5}); err == nil {
		t.Fatal("probe jitter > 1 accepted")
	}
	if _, err := New(Config{Shards: 4, Members: base, ProbeJitter: -1}); err != nil {
		t.Fatalf("negative jitter (explicitly none) rejected: %v", err)
	}
}

// TestKVBreakerVisibleInFleetStats pins the breaker's observability
// loop: partition the store, watch the fleet view report the breaker
// open with trips and short-circuits, heal, and watch it re-close.
func TestKVBreakerVisibleInFleetStats(t *testing.T) {
	env := newHealEnv(t, 2, 1, 1, 600, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	queries := datagen.TrafficQueries()
	env.checkConverged(t, ctx, "bootstrap")
	c := env.clients[0]

	// Healthy store: traffic flows, breaker closed.
	s1, _, err := c.NewSession(ctx, "r0", queries[0], client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close(ctx)
	fleet, err := c.Fleet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Shared.RemoteBreaker != "closed" {
		t.Fatalf("healthy breaker state %q", fleet.Shared.RemoteBreaker)
	}
	if fleet.PlacementHash == "" || fleet.PlacementHash != env.routers[0].PlacementHash() {
		t.Fatalf("fleet placement hash %q", fleet.PlacementHash)
	}

	// Partition. Each kv client trips after 2 failures; the session
	// keeps working (kv is an optimization tier, not a dependency),
	// and once open, requests short-circuit instead of eating a
	// timeout per call.
	env.kvBr.Kill()
	for i := 0; i < 6; i++ {
		if _, err := s1.SetRange(ctx, "a", float64(i), float64(i+50)); err != nil {
			t.Fatalf("op %d during partition: %v", i, err)
		}
	}
	fleet, err = c.Fleet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Shared.RemoteBreaker != "open" || fleet.Shared.RemoteTrips == 0 {
		t.Fatalf("partitioned breaker: state %q trips %d", fleet.Shared.RemoteBreaker, fleet.Shared.RemoteTrips)
	}
	if fleet.Shared.RemoteShortCircuits == 0 {
		t.Fatal("open breaker never short-circuited")
	}

	// Heal; after the cooldown a probe re-closes the breaker.
	env.kvBr.Revive()
	deadline := time.Now().Add(10 * time.Second)
	for {
		time.Sleep(15 * time.Millisecond)
		if _, err := s1.SetRange(ctx, "b", 1, 80); err != nil {
			t.Fatalf("op after heal: %v", err)
		}
		fleet, err = c.Fleet(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if fleet.Shared.RemoteBreaker == "closed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never re-closed after heal: %q", fleet.Shared.RemoteBreaker)
		}
	}
}
