package visdb_test

import (
	"fmt"
	"log"

	"repro/visdb"
)

// ExampleNewEngine shows the minimal visual feedback query flow.
func ExampleNewEngine() {
	cat := visdb.NewCatalog()
	tbl, err := visdb.NewTable("T", visdb.Schema{
		{Name: "x", Kind: visdb.KindFloat},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := tbl.AppendRow(visdb.Float(float64(i))); err != nil {
			log.Fatal(err)
		}
	}
	if err := cat.AddTable(tbl); err != nil {
		log.Fatal(err)
	}
	eng := visdb.NewEngine(cat, visdb.Options{GridW: 8, GridH: 8})
	res, err := eng.RunSQL(`SELECT x FROM T WHERE x > 6`)
	if err != nil {
		log.Fatal(err)
	}
	st := res.Stats()
	fmt.Printf("objects=%d exact=%d\n", st.NumObjects, st.NumResults)
	// Output: objects=10 exact=3
}

// ExampleGradi renders the figure-3 query representation.
func ExampleGradi() {
	q, err := visdb.Parse(`SELECT a FROM T WHERE a > 1 AND b < 2`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(visdb.Gradi(q))
	// Output:
	// Query Representation
	// ====================
	// Result List: a
	// From: T
	// AND
	// ├── [a > 1]
	// └── [b < 2]
}

// ExampleNewSession shows an interactive slider modification.
func ExampleNewSession() {
	cat := visdb.NewCatalog()
	tbl, _ := visdb.NewTable("T", visdb.Schema{{Name: "x", Kind: visdb.KindFloat}})
	for i := 0; i < 10; i++ {
		if err := tbl.AppendRow(visdb.Float(float64(i))); err != nil {
			log.Fatal(err)
		}
	}
	if err := cat.AddTable(tbl); err != nil {
		log.Fatal(err)
	}
	s, err := visdb.NewSession(cat, visdb.Options{GridW: 8, GridH: 8}, `SELECT x FROM T WHERE x > 8`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("before:", s.Result().Stats().NumResults)
	c, err := s.FindCond("x")
	if err != nil {
		log.Fatal(err)
	}
	if err := s.SetRange(c, 5, 9); err != nil { // drag the slider
		log.Fatal(err)
	}
	fmt.Println("after: ", s.Result().Stats().NumResults)
	// Output:
	// before: 1
	// after:  5
}

// ExampleResult_TopK shows similarity-retrieval style consumption of
// the ranking.
func ExampleResult_TopK() {
	cat := visdb.NewCatalog()
	tbl, _ := visdb.NewTable("P", visdb.Schema{{Name: "v", Kind: visdb.KindFloat}})
	for _, v := range []float64{3, 41, 40, 39, 100} {
		if err := tbl.AppendRow(visdb.Float(v)); err != nil {
			log.Fatal(err)
		}
	}
	if err := cat.AddTable(tbl); err != nil {
		log.Fatal(err)
	}
	eng := visdb.NewEngine(cat, visdb.Options{GridW: 4, GridH: 4})
	res, err := eng.RunSQL(`SELECT v FROM P WHERE v = 40`)
	if err != nil {
		log.Fatal(err)
	}
	for _, item := range res.TopK(3) {
		tup, _ := res.Tuple(item)
		fmt.Println(tup.Rows[0][0])
	}
	// Output:
	// 40
	// 41
	// 39
}
