package visdb_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/visdb"
)

// TestPublicAPIQuickstart exercises the documented quickstart flow end
// to end through the public API only.
func TestPublicAPIQuickstart(t *testing.T) {
	cat := visdb.NewCatalog()
	tbl, err := visdb.NewTable("T", visdb.Schema{
		{Name: "x", Kind: visdb.KindFloat},
		{Name: "label", Kind: visdb.KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := tbl.AppendRow(visdb.Float(float64(i)), visdb.Str("item")); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	eng := visdb.NewEngine(cat, visdb.Options{GridW: 16, GridH: 16})
	res, err := eng.RunSQL(`SELECT x FROM T WHERE x > 40`)
	if err != nil {
		t.Fatal(err)
	}
	stats := res.Stats()
	if stats.NumObjects != 50 || stats.NumResults != 9 {
		t.Fatalf("stats: %+v", stats)
	}
	img, err := res.Image(2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "result.png")
	if err := img.SavePNG(path); err != nil {
		t.Fatal(err)
	}
	if ascii := img.ASCII(60, 30); len(ascii) == 0 {
		t.Fatal("ASCII preview empty")
	}
}

func TestPublicAPISession(t *testing.T) {
	cat, _, err := visdb.Environmental(visdb.EnvConfig{Hours: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := visdb.NewSession(cat, visdb.Options{GridW: 12, GridH: 12},
		`SELECT Temperature FROM Weather WHERE Temperature > 18 AND Humidity < 70`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.FindCond("Temperature")
	if err != nil {
		t.Fatal(err)
	}
	before := s.Result().Stats().NumResults
	if err := s.SetRange(c, 10, 40); err != nil {
		t.Fatal(err)
	}
	after := s.Result().Stats().NumResults
	if after < before {
		t.Fatalf("widening the range should not lose results: %d -> %d", before, after)
	}
	if !strings.Contains(s.PanelText(), "# objects") {
		t.Fatal("panel text")
	}
}

func TestPublicAPIGradi(t *testing.T) {
	q, err := visdb.Parse(`SELECT a FROM T WHERE a > 1 OR b < 2`)
	if err != nil {
		t.Fatal(err)
	}
	art := visdb.Gradi(q)
	if !strings.Contains(art, "OR") {
		t.Fatalf("gradi: %s", art)
	}
	if got := len(visdb.Predicates(q.Where)); got != 2 {
		t.Fatalf("predicates: %d", got)
	}
}

func TestPublicAPIBaselineAndGenerators(t *testing.T) {
	tbl, truth, err := visdb.CADParts(visdb.CADConfig{Parts: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cat := visdb.NewCatalog()
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	rows, err := visdb.BooleanMatches(cat, visdb.CADQuerySQL(truth, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("boolean query should find the planted exact rows")
	}
	mcat, mtruth, err := visdb.MultiDB(visdb.MultiDBConfig{People: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mcat.Table("PersonsB"); err != nil {
		t.Fatal(err)
	}
	if len(mtruth.Matches) == 0 {
		t.Fatal("no planted matches")
	}
}

func TestPublicAPICustomColormap(t *testing.T) {
	cat := visdb.NewCatalog()
	tbl, _ := visdb.NewTable("T", visdb.Schema{{Name: "x", Kind: visdb.KindFloat}})
	for i := 0; i < 10; i++ {
		if err := tbl.AppendRow(visdb.Float(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	_ = cat.AddTable(tbl)
	for _, m := range []*visdb.Colormap{
		visdb.ColormapVisDB(64),
		visdb.ColormapGrayscale(64),
		visdb.ColormapHeat(64),
		visdb.ColormapOptimized(64),
	} {
		eng := visdb.NewEngine(cat, visdb.Options{GridW: 4, GridH: 4, Map: m})
		res, err := eng.RunSQL(`SELECT x FROM T WHERE x > 5`)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if res.Stats().NumResults != 4 {
			t.Fatalf("%s: results %d", m.Name(), res.Stats().NumResults)
		}
		if _, err := res.Image(1); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
	}
	if visdb.ColormapOptimized(64).JNDs() <= visdb.ColormapGrayscale(64).JNDs() {
		t.Error("optimized map should beat grayscale on JNDs")
	}
}

func TestPublicAPICustomDistance(t *testing.T) {
	cat := visdb.NewCatalog()
	tbl, _ := visdb.NewTable("S", visdb.Schema{{Name: "code", Kind: visdb.KindString}})
	for _, c := range []string{"AAA", "AAB", "ZZZ"} {
		if err := tbl.AppendRow(visdb.Str(c)); err != nil {
			t.Fatal(err)
		}
	}
	_ = cat.AddTable(tbl)
	reg := visdb.NewRegistry()
	reg.RegisterString("firstchar", func(a, b string) float64 {
		if len(a) > 0 && len(b) > 0 && a[0] == b[0] {
			return 0
		}
		return 1
	})
	eng := visdb.NewEngineWithRegistry(cat, reg, visdb.Options{GridW: 4, GridH: 4})
	res, err := eng.RunSQL(`SELECT code FROM S WHERE code = 'AXX' USING firstchar`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats().NumResults != 2 {
		t.Fatalf("custom distance results: %d", res.Stats().NumResults)
	}
}

// TestPublicAPIWorkersAndFullSort exercises the performance options
// through the public API: FullSort and the default selection ranking
// must agree on the display, and Workers must not change results.
func TestPublicAPIWorkersAndFullSort(t *testing.T) {
	cat := visdb.NewCatalog()
	tbl, err := visdb.NewTable("T", visdb.Schema{{Name: "x", Kind: visdb.KindFloat}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := tbl.AppendRow(visdb.Float(float64(i % 977))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	sql := `SELECT x FROM T WHERE x BETWEEN 100 AND 200`
	var ref *visdb.Result
	for _, opt := range []visdb.Options{
		{GridW: 8, GridH: 8, Workers: 1},
		{GridW: 8, GridH: 8, Workers: 4},
		{GridW: 8, GridH: 8, Workers: 4, FullSort: true},
	} {
		res, err := visdb.NewEngine(cat, opt).RunSQL(sql)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Displayed != ref.Displayed {
			t.Fatalf("Displayed diverged: %d vs %d (opt %+v)", res.Displayed, ref.Displayed, opt)
		}
		for i, it := range res.TopK(res.Displayed) {
			if it != ref.Order[i] {
				t.Fatalf("rank %d diverged (opt %+v)", i, opt)
			}
		}
	}
}
