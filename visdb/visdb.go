// Package visdb is the public API of the VisDB reproduction — the
// visual feedback query system of Keim, Kriegel & Seidl, "Supporting
// Data Mining of Large Databases by Visual Feedback Queries"
// (ICDE 1994).
//
// VisDB answers a query with a relevance ranking of every data item
// instead of a boolean result set, and paints that ranking
// pixel-per-item: absolutely correct answers in yellow at the window
// center, approximate answers spiraling outward through green, blue and
// red to almost black. One window shows the overall result; one
// positionally-aligned window per selection predicate shows how each
// part of the query contributed.
//
// Quickstart:
//
//	cat := visdb.NewCatalog()
//	tbl, _ := visdb.NewTable("T", visdb.Schema{
//		{Name: "x", Kind: visdb.KindFloat},
//	})
//	tbl.AppendRow(visdb.Float(4.2))
//	cat.AddTable(tbl)
//	eng := visdb.NewEngine(cat, visdb.Options{GridW: 64, GridH: 64})
//	res, _ := eng.RunSQL(`SELECT x FROM T WHERE x > 3`)
//	img, _ := res.Image(2)
//	img.SavePNG("out/result.png")
//
// For interactive exploration (sliders, weights, tuple selection,
// color-range projection, drill-down), open a Session. For synthetic
// workloads matching the paper's scenarios, see the Environmental,
// CADParts and MultiDB generators.
//
// # Performance options
//
// By default the engine ranks with a top-k selection rather than the
// full sort the paper describes as the dominating cost: only the
// display budget (GridW×GridH plus the gap-heuristic margin) is ever
// materialized in order, in expected O(n) time. Set Options.FullSort
// for an exact full ranking (the A-series ablations and exact quantile
// statistics), and Options.Workers to bound the worker pool that
// chunks per-predicate distance computation (0 selects GOMAXPROCS;
// parallel and serial runs are bit-identical).
//
// # Incremental reruns
//
// Sessions recalculate incrementally: per-predicate distance vectors
// are cached across reruns keyed by the condition's structure (table,
// attribute, operator, literals, distance function — weighting factors
// excluded), so dragging a weight slider recomputes nothing below the
// combination stage and dragging one range slider recomputes exactly
// one predicate. Evaluation writes into pooled buffers, hot leaves get
// sorted quantile indexes for O(1) normalization ranges, and
// per-predicate window vectors materialize lazily. Cached reruns are
// bit-identical to cold runs; the trade is that a session's Result is
// valid only until its next modification. Engine.RunCached exposes the
// same machinery for custom loops.
//
// # Concurrent sessions
//
// Many sessions serving different users over one catalog share leaf
// work through a catalog-level SharedCache (NewSessionShared): leaf
// distance vectors and quantile indexes are computed once per catalog
// with singleflight fills, bounded by an LRU byte budget, and every
// entry is immutable — invalidation and eviction only unlink, so
// concurrent readers are never affected (copy-on-invalidate). Each
// session stays a single-goroutine state machine; any number may run
// in parallel against one SharedCache, and results remain bit-identical
// to isolated sessions.
//
// # Remote sessions
//
// The same interaction loop is served cross-process by the visdbd
// daemon (cmd/visdbd): catalogs are sharded across serving workers
// and sessions route by catalog, each catalog backed by its own
// SharedCache. The typed HTTP client lives in visdb/client; remote
// results are bitwise identical to in-process sessions, and response
// sizes track the display budget rather than the catalog size.
package visdb

import (
	"repro/internal/baseline"
	"repro/internal/colormap"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/query"
	"repro/internal/render"
	"repro/internal/session"
)

// Storage types: a Catalog holds named Tables and Connections (the
// predefined, parameterizable joins of the query interface).
type (
	Catalog    = dataset.Catalog
	Table      = dataset.Table
	Schema     = dataset.Schema
	Field      = dataset.Field
	Value      = dataset.Value
	Kind       = dataset.Kind
	Connection = dataset.Connection
	ConnMetric = dataset.ConnMetric
	ConnMode   = dataset.ConnMode
)

// Datatype kinds.
const (
	KindFloat   = dataset.KindFloat
	KindInt     = dataset.KindInt
	KindString  = dataset.KindString
	KindTime    = dataset.KindTime
	KindBool    = dataset.KindBool
	KindOrdinal = dataset.KindOrdinal
	KindNominal = dataset.KindNominal
)

// Connection metrics and modes.
const (
	MetricNumeric = dataset.MetricNumeric
	MetricTime    = dataset.MetricTime
	MetricGeo     = dataset.MetricGeo
	MetricString  = dataset.MetricString

	ModeEqual  = dataset.ModeEqual
	ModeTarget = dataset.ModeTarget
	ModeWithin = dataset.ModeWithin
)

// Value constructors.
var (
	Float   = dataset.Float
	Int     = dataset.Int
	Str     = dataset.Str
	TimeVal = dataset.Time
	BoolVal = dataset.Bool
	Ordinal = dataset.Ordinal
	Nominal = dataset.Nominal
	Null    = dataset.Null
)

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog { return dataset.NewCatalog() }

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema Schema) (*Table, error) {
	return dataset.NewTable(name, schema)
}

// ReadCSV loads a table from CSV (header must match the schema).
var ReadCSV = dataset.ReadCSV

// OpenOptions configures OpenCatalogFile (read backend, cache budget).
type OpenOptions = dataset.OpenOptions

// WriteCatalogFile streams an in-memory catalog into an on-disk
// segment catalog and returns the content-hash epoch stamped into its
// footer; OpenCatalogFile serves a catalog straight from such a file
// through a bounded decoded-segment cache — resident memory is
// O(cache budget), not O(catalog), and query results are bit-identical
// to the in-memory catalog. Close the opened catalog to release the
// backing file.
var (
	WriteCatalogFile = dataset.WriteCatalogFile
	OpenCatalogFile  = dataset.OpenCatalogFile
	// WriteCatalogFileV2 and WriteCatalogFileV1 write the older segment
	// formats (no per-segment stats or codecs; v1 also lacks footer
	// integrity) for compatibility tooling — OpenCatalogFile reads all
	// three.
	WriteCatalogFileV2 = dataset.WriteCatalogFileV2
	WriteCatalogFileV1 = dataset.WriteCatalogFileV1
)

// Query types.
type (
	Query   = query.Query
	Expr    = query.Expr
	Cond    = query.Cond
	Binding = query.Binding
)

// Parse parses the VisDB query dialect (SQL-like with WEIGHT, USING and
// CONNECT extensions; see the query package for the grammar).
func Parse(src string) (*Query, error) { return query.Parse(src) }

// Gradi renders the GRADI query-representation window (figure 3 of the
// paper) as ASCII art.
func Gradi(q *Query) string { return query.Gradi(q) }

// Predicates returns the top-level selection predicates of a condition
// tree — the parts that get their own visualization windows.
var Predicates = query.Predicates

// Engine types.
type (
	Engine        = core.Engine
	Options       = core.Options
	Result        = core.Result
	PanelStats    = core.PanelStats
	PredicateInfo = core.PredicateInfo
	SelectedTuple = core.SelectedTuple
)

// RunCache is the reuse layer of the incremental feedback loop: leaf
// distance vectors cached across Engine.RunCached calls (keyed
// structurally, weighting factors excluded) plus pooled evaluation
// buffers. Sessions manage one internally; use an explicit cache with
// Engine.RunCached for custom interaction loops. A Result produced
// through a cache is valid only until the next RunCached on that
// cache.
type RunCache = core.RunCache

// NewRunCache creates an empty cache for Engine.RunCached.
var NewRunCache = core.NewRunCache

// SharedCache is the catalog-level tier of the predicate cache: one
// instance per catalog, shared by any number of concurrent sessions,
// with singleflight fills, immutable copy-on-invalidate entries and
// LRU + byte-budget eviction. Leaf distance vectors (and their
// quantile indexes) are computed once per catalog instead of once per
// session.
type SharedCache = core.SharedCache

// SharedStats is a snapshot of a SharedCache's counters.
type SharedStats = core.SharedStats

// SharedOptions configures a shared tier: entry cap, byte budget and
// the cost-aware admission threshold (AdmitMinCost; zero selects the
// ~1ms default, negative admits every leaf).
type SharedOptions = core.SharedOptions

// NewSharedCache creates a shared tier; zero bounds select the
// defaults (1024 entries, 256 MiB). Caches built this way admit every
// computed leaf; use NewSharedCacheOpts for cost-aware admission.
var NewSharedCache = core.NewSharedCache

// NewSharedCacheOpts creates a shared tier from SharedOptions, with
// cost-aware admission on by default: only leaves whose measured
// compute time reaches AdmitMinCost occupy the budget, so cheap
// numeric slider sweeps cannot churn the tier. This is what the
// serving subsystem (internal/server, cmd/visdbd) uses per catalog.
var NewSharedCacheOpts = core.NewSharedCacheOpts

// Arrangement kinds.
const (
	ArrangeSpiral = core.ArrangeSpiral
	Arrange2D     = core.Arrange2D
)

// Colormap is a discretized path through color space; set Options.Map
// to override the default 256-level VisDB map.
type Colormap = colormap.Map

// Colormap constructors: the paper's yellow→green→blue→red→black path,
// the gray-scale baseline, a conventional heat path, and the greedy
// JND-maximizing variant of the section 4.2 design task.
var (
	ColormapVisDB     = colormap.VisDB
	ColormapGrayscale = colormap.Grayscale
	ColormapHeat      = colormap.Heat
	ColormapOptimized = colormap.Optimized
)

// Registry of distance functions for custom application distances.
type Registry = distance.Registry

// NewRegistry returns a registry pre-populated with the built-in
// numeric and string distances.
func NewRegistry() *Registry { return distance.NewRegistry() }

// NewEngine creates a query engine over a catalog with built-in
// distances.
func NewEngine(cat *Catalog, opt Options) *Engine {
	return core.New(cat, nil, opt)
}

// NewEngineWithRegistry creates an engine with custom distances.
func NewEngineWithRegistry(cat *Catalog, reg *Registry, opt Options) *Engine {
	return core.New(cat, reg, opt)
}

// Session is the interactive exploration layer (sliders, weights,
// selection, projection, drill-down).
type Session = session.Session

// NewSession opens an interactive session on a query string.
func NewSession(cat *Catalog, opt Options, sql string) (*Session, error) {
	return session.NewSQL(cat, nil, opt, sql)
}

// NewSessionQuery opens a session on a parsed query.
func NewSessionQuery(cat *Catalog, opt Options, q *Query) (*Session, error) {
	return session.New(cat, nil, opt, q)
}

// NewSessionShared opens a session attached to a catalog-level shared
// cache: any number of concurrent sessions on the same catalog share
// leaf distance vectors through it (each session itself remains
// single-goroutine).
func NewSessionShared(cat *Catalog, opt Options, sql string, shared *SharedCache) (*Session, error) {
	return session.NewSQLShared(cat, nil, opt, sql, shared)
}

// Image is the off-screen framebuffer windows render into; it encodes
// to PNG or PPM and previews as ASCII.
type Image = render.Image

// Window is one rendered visualization window.
type Window = render.Window

// Compose lays windows out in a grid (the figure-4 visualization part).
var Compose = render.Compose

// BooleanMatches evaluates a query with traditional exact boolean
// semantics and returns the matching row indices — the comparison
// baseline the paper's motivation argues against.
func BooleanMatches(cat *Catalog, sql string) ([]int, error) {
	return baseline.MatchesSQL(cat, sql)
}

// Synthetic workload generators matching the paper's scenarios.
type (
	EnvConfig     = datagen.EnvConfig
	EnvTruth      = datagen.EnvTruth
	CADConfig     = datagen.CADConfig
	CADTruth      = datagen.CADTruth
	MultiDBConfig = datagen.MultiDBConfig
	MultiDBTruth  = datagen.MultiDBTruth
)

// Environmental generates the weather/air-pollution catalog of
// section 3 with planted correlations, measurement offsets and hot
// spots.
var Environmental = datagen.Environmental

// CADParts generates the 27-parameter CAD table of section 4.5 with
// planted similar parts and the near-miss part boolean queries lose.
var CADParts = datagen.CADParts

// CADQuerySQL builds the boolean allowance query for a generated CAD
// truth.
var CADQuerySQL = datagen.CADQuerySQL

// MultiDB generates two independent person databases with misspelled
// correspondences for the approximate-join scenario of section 4.5.
var MultiDB = datagen.MultiDB
