// Package client is the typed Go client of the visdbd serving
// protocol: it drives the paper's visual feedback loop — query
// replacement, range sliders, weighting factors, undo, top-k result
// retrieval — against a remote visdbd (or any internal/server
// handler) over HTTP/JSON, using only the standard library.
//
// A Session mirrors the interactive surface of visdb.Session, but
// every method takes a context and returns the server's
// post-recalculation summary, so a thin client renders the stats
// panel without ever transferring more than the display budget:
//
//	c := client.New("http://localhost:8491")
//	s, _, err := c.NewSession(ctx, "env", `SELECT temp FROM obs WHERE temp > 20`, client.Options{})
//	if err != nil { ... }
//	defer s.Close(ctx)
//	sum, err := s.SetRange(ctx, "temp", 15, 25)     // drag the slider
//	res, err := s.Results(ctx, 10)                  // top-10 rows
//
// The client is safe for concurrent use; one Session, like its
// server-side counterpart, represents a single user's interaction
// loop and is serialized by the server's per-session mutex.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"

	"repro/internal/wire"
)

// Wire types re-exported so callers need no internal import.
type (
	// Options configures a new session; zero fields pick the server's
	// defaults.
	Options = wire.SessionOptions
	// Summary is the scalar session state every mutating call returns.
	Summary = wire.Summary
	// Timings is the stage breakdown of the last recalculation.
	Timings = wire.Timings
	// Row is one ranked result row.
	Row = wire.Row
	// Results carries the summary plus the top-k rows.
	Results = wire.ResultsResponse
	// ShardStats describes one server shard.
	ShardStats = wire.ShardStats
	// CatalogInfo describes one served catalog.
	CatalogInfo = wire.CatalogInfo
)

// APIError is a non-2xx protocol response.
type APIError struct {
	Status int    // HTTP status code
	Msg    string // server's error message
}

func (e *APIError) Error() string {
	return fmt.Sprintf("visdbd: %s (http %d)", e.Msg, e.Status)
}

// Client speaks the serving protocol to one server.
type Client struct {
	base string
	// HTTP is the underlying client; replace it before first use for
	// custom transports or timeouts. Defaults to http.DefaultClient.
	HTTP *http.Client
}

// New creates a client for a server base URL (e.g.
// "http://localhost:8491", no trailing slash needed).
func New(baseURL string) *Client {
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	return &Client{base: baseURL, HTTP: http.DefaultClient}
}

// do performs one JSON round trip. A nil in sends no body; a nil out
// discards the response body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e wire.ErrorResponse
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &APIError{Status: resp.StatusCode, Msg: msg}
	}
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Session is a remote interactive session.
type Session struct {
	c *Client
	// ID is the server-assigned session ID (it embeds the owning
	// shard).
	ID string
	// Catalog and Shard echo the routing decision.
	Catalog string
	Shard   int
}

// NewSession opens a session on a catalog and returns it with the
// summary of the initial run.
func (c *Client) NewSession(ctx context.Context, catalog, query string, opt Options) (*Session, Summary, error) {
	var info wire.SessionInfo
	err := c.do(ctx, http.MethodPost, "/v1/sessions",
		wire.CreateSessionRequest{Catalog: catalog, Query: query, Options: opt}, &info)
	if err != nil {
		return nil, Summary{}, err
	}
	return &Session{c: c, ID: info.ID, Catalog: info.Catalog, Shard: info.Shard}, info.Summary, nil
}

// path builds a session endpoint path.
func (s *Session) path(suffix string) string {
	p := "/v1/sessions/" + url.PathEscape(s.ID)
	if suffix != "" {
		p += "/" + suffix
	}
	return p
}

// SetQuery replaces the whole query (the old state stays undoable).
func (s *Session) SetQuery(ctx context.Context, query string) (Summary, error) {
	var sum Summary
	err := s.c.do(ctx, http.MethodPost, s.path("query"), wire.QueryRequest{Query: query}, &sum)
	return sum, err
}

// SetRange moves the range of the first condition on attr — the
// remote slider drag. Pass math.Inf(-1) / math.Inf(1) for open sides;
// they travel as null bounds.
func (s *Session) SetRange(ctx context.Context, attr string, lo, hi float64) (Summary, error) {
	req := wire.RangeRequest{Attr: attr}
	if !math.IsInf(lo, -1) {
		req.Lo = &lo
	}
	if !math.IsInf(hi, 1) {
		req.Hi = &hi
	}
	var sum Summary
	err := s.c.do(ctx, http.MethodPost, s.path("range"), req, &sum)
	return sum, err
}

// SetWeight sets the weighting factor of the pred-th top-level
// selection predicate (query order, 0-based).
func (s *Session) SetWeight(ctx context.Context, pred int, weight float64) (Summary, error) {
	var sum Summary
	err := s.c.do(ctx, http.MethodPost, s.path("weight"), wire.WeightRequest{Pred: pred, Weight: weight}, &sum)
	return sum, err
}

// Undo reverts the most recent modification.
func (s *Session) Undo(ctx context.Context) (Summary, error) {
	var sum Summary
	err := s.c.do(ctx, http.MethodPost, s.path("undo"), struct{}{}, &sum)
	return sum, err
}

// Results fetches the top-k ranked rows (item index, combined
// distance, relevance factor). top < 0 means "everything displayed";
// the server caps k at the displayed count either way.
func (s *Session) Results(ctx context.Context, top int) (Results, error) {
	return s.results(ctx, top, false)
}

// ResultsWithTuples is Results plus the rendered attribute values of
// each row's underlying tuple(s).
func (s *Session) ResultsWithTuples(ctx context.Context, top int) (Results, error) {
	return s.results(ctx, top, true)
}

func (s *Session) results(ctx context.Context, top int, tuples bool) (Results, error) {
	q := url.Values{}
	if top >= 0 {
		q.Set("top", fmt.Sprint(top))
	}
	if tuples {
		q.Set("tuples", "1")
	}
	p := s.path("results")
	if len(q) > 0 {
		p += "?" + q.Encode()
	}
	var res Results
	err := s.c.do(ctx, http.MethodGet, p, nil, &res)
	return res, err
}

// Timings fetches the stage timings of the last recalculation.
func (s *Session) Timings(ctx context.Context) (Summary, error) {
	var sum Summary
	err := s.c.do(ctx, http.MethodGet, s.path("timings"), nil, &sum)
	return sum, err
}

// Close deletes the session on the server.
func (s *Session) Close(ctx context.Context) error {
	return s.c.do(ctx, http.MethodDelete, s.path(""), nil, nil)
}

// ShardStats fetches every shard's serving and shared-cache counters.
func (c *Client) ShardStats(ctx context.Context) ([]ShardStats, error) {
	var out []ShardStats
	err := c.do(ctx, http.MethodGet, "/v1/shards", nil, &out)
	return out, err
}

// Catalogs lists the served catalogs and their shard homes.
func (c *Client) Catalogs(ctx context.Context) ([]CatalogInfo, error) {
	var out []CatalogInfo
	err := c.do(ctx, http.MethodGet, "/v1/catalogs", nil, &out)
	return out, err
}
