// Package client is the typed Go client of the visdbd serving
// protocol: it drives the paper's visual feedback loop — query
// replacement, range sliders, weighting factors, undo, top-k result
// retrieval — against a remote visdbd (or any internal/server
// handler) over HTTP/JSON, using only the standard library.
//
// A Session mirrors the interactive surface of visdb.Session, but
// every method takes a context and returns the server's
// post-recalculation summary, so a thin client renders the stats
// panel without ever transferring more than the display budget:
//
//	c := client.New("http://localhost:8491")
//	s, _, err := c.NewSession(ctx, "env", `SELECT temp FROM obs WHERE temp > 20`, client.Options{})
//	if err != nil { ... }
//	defer s.Close(ctx)
//	sum, err := s.SetRange(ctx, "temp", 15, 25)     // drag the slider
//	res, err := s.Results(ctx, 10)                  // top-10 rows
//
// The client is safe for concurrent use; one Session, like its
// server-side counterpart, represents a single user's interaction
// loop and is serialized by the server's per-session mutex.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// Wire types re-exported so callers need no internal import.
type (
	// Options configures a new session; zero fields pick the server's
	// defaults.
	Options = wire.SessionOptions
	// Summary is the scalar session state every mutating call returns.
	Summary = wire.Summary
	// Timings is the stage breakdown of the last recalculation.
	Timings = wire.Timings
	// Row is one ranked result row.
	Row = wire.Row
	// Results carries the summary plus the top-k rows.
	Results = wire.ResultsResponse
	// ShardStats describes one server shard.
	ShardStats = wire.ShardStats
	// CatalogInfo describes one served catalog.
	CatalogInfo = wire.CatalogInfo
	// Health is a node's self-report (per-shard sessions, quarantined
	// catalogs, uptime).
	Health = wire.HealthResponse
	// FleetStats aggregates a whole fleet behind a router.
	FleetStats = wire.FleetStats
)

// APIError is a non-2xx protocol response.
type APIError struct {
	Status int    // HTTP status code
	Msg    string // server's error message
	// Code is the server's machine-readable error class (one of the
	// wire.Code* constants: "deadline", "seq_conflict", "session_cap",
	// "catalog_quarantined", …), empty for generic failures. Branch on
	// Code, never on Msg.
	Code string
	// RetryAfter is the server's Retry-After hint, zero when absent.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("visdbd: %s (http %d, %s)", e.Msg, e.Status, e.Code)
	}
	return fmt.Sprintf("visdbd: %s (http %d)", e.Msg, e.Status)
}

// RetryPolicy configures the client's automatic retries. Retries
// cover transport failures (connection drops, resets) and 5xx
// responses — outcomes where the operation may or may not have been
// applied; the per-session sequence numbers the client stamps on every
// mutating request make such retries exactly-once on the server, so a
// replayed request returns the original response instead of applying
// twice. 4xx responses are never retried (the server made a
// deterministic decision).
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget, first try included;
	// values below 1 read as 1 (no retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: attempt n (1-based)
	// waits BaseDelay·2^(n-1), capped at MaxDelay, before retrying.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff wait; 0 means uncapped.
	MaxDelay time.Duration
	// Jitter spreads each wait uniformly over ±Jitter·delay (0..1), so
	// a fleet of clients shed by the same outage does not retry in
	// lockstep. 0 disables jitter.
	Jitter float64
	// Rand supplies the jitter's uniform [0,1) samples; nil selects
	// math/rand's global source. Tests inject a deterministic one.
	Rand func() float64
	// Sleep waits out a backoff delay; nil selects a real timer bounded
	// by the context. Tests inject a virtual clock so retry schedules
	// run in microseconds.
	Sleep func(ctx context.Context, d time.Duration) error
	// PerTryTimeout bounds each individual attempt; 0 leaves only the
	// caller's context. The overall budget is still the caller's
	// context — an expired parent context stops the loop regardless.
	PerTryTimeout time.Duration
}

// DefaultRetryPolicy returns a conservative production policy: 4
// attempts, 100 ms base delay doubling to a 2 s cap, ±50% jitter.
func DefaultRetryPolicy() *RetryPolicy {
	return &RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: 0.5}
}

// delay computes the wait before retrying after attempt n (1-based),
// honoring a server Retry-After hint when it is longer than the
// backoff would be.
func (p *RetryPolicy) delay(attempt int, retryAfter time.Duration) time.Duration {
	d := p.BaseDelay << (attempt - 1)
	if p.BaseDelay > 0 && d < p.BaseDelay { // overflow past ~60 attempts
		d = p.MaxDelay
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		r := rand.Float64
		if p.Rand != nil {
			r = p.Rand
		}
		d = time.Duration(float64(d) * (1 + p.Jitter*(2*r()-1)))
	}
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// sleep waits d or until ctx is done, via the injected clock if any.
func (p *RetryPolicy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryable reports whether an attempt's outcome warrants another try.
// Transport errors always qualify. Protocol errors are keyed on their
// machine-readable code, not just the status class: the transient
// fleet conditions — a shard's node died and the router is replacing
// it (node_down), a shard at its session cap (session_cap), a rolled-
// back deadline overrun (deadline/canceled: the same Seq re-applies
// exactly once) — retry, as does catalog_quarantined (the catalog may
// come back on a healthy replacement node even though one node's
// quarantine is sticky) and no_healthy_members (the whole fleet is
// down; the Retry-After hint paces the wait for the first recovery).
// Coded 4xx conflicts (seq_conflict, nothing_to_undo,
// session_not_found) never retry — the server made a deterministic
// decision; session_not_found in particular cannot heal by
// retransmission, only by recreating the session (FleetSession does) —
// and anything else falls back to the status class (5xx retries, 4xx
// does not).
func retryable(err error) bool {
	if err == nil {
		return false
	}
	if ae, ok := err.(*APIError); ok {
		switch ae.Code {
		case wire.CodeNodeDown, wire.CodeCatalogQuarantined, wire.CodeSessionCap,
			wire.CodeDeadline, wire.CodeCanceled, wire.CodeNoHealthyMembers:
			return true
		case wire.CodeSeqConflict, wire.CodeNothingToUndo, wire.CodeSessionNotFound:
			return false
		}
		// Unknown or absent code: fall back to the status class.
		return ae.Status >= 500
	}
	// Transport-level failure (connection refused, reset, injected
	// drop). The caller's context expiring is checked separately.
	return true
}

// Client speaks the serving protocol to one server.
type Client struct {
	base string
	// HTTP is the underlying client; replace it before first use for
	// custom transports or timeouts. Defaults to http.DefaultClient.
	HTTP *http.Client
	// Retry, when non-nil, enables automatic retries for transport
	// failures and 5xx responses (see RetryPolicy). Nil — the default —
	// keeps the historical single-attempt behavior, where admission
	// sheds (503) surface directly to the caller.
	Retry *RetryPolicy
	// Now supplies the wall clock used to turn an HTTP-date Retry-After
	// header into a duration; nil selects time.Now. Tests inject a
	// fixed clock so date arithmetic is deterministic.
	Now func() time.Time
}

// New creates a client for a server base URL (e.g.
// "http://localhost:8491", no trailing slash needed).
func New(baseURL string) *Client {
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	return &Client{base: baseURL, HTTP: http.DefaultClient}
}

// do performs a JSON round trip, retrying per c.Retry when set. A nil
// in sends no body; a nil out discards the response body. The body is
// marshaled once and replayed from the same bytes on every attempt.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var buf []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		buf = b
	}
	p := c.Retry
	if p == nil {
		return c.doOnce(ctx, method, path, buf, out)
	}
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 1; ; attempt++ {
		tryCtx, cancel := ctx, context.CancelFunc(nil)
		if p.PerTryTimeout > 0 {
			tryCtx, cancel = context.WithTimeout(ctx, p.PerTryTimeout)
		}
		err = c.doOnce(tryCtx, method, path, buf, out)
		if cancel != nil {
			cancel()
		}
		if err == nil || attempt >= attempts || !retryable(err) || ctx.Err() != nil {
			return err
		}
		var hint time.Duration
		if ae, ok := err.(*APIError); ok {
			hint = ae.RetryAfter
		}
		if serr := p.sleep(ctx, p.delay(attempt, hint)); serr != nil {
			return err // budget gone: surface the last real failure
		}
	}
}

// doOnce performs exactly one round trip.
func (c *Client) doOnce(ctx context.Context, method, path string, buf []byte, out any) error {
	var body io.Reader
	if buf != nil {
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if buf != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e wire.ErrorResponse
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		ae := &APIError{Status: resp.StatusCode, Msg: msg, Code: e.Code}
		// RFC 9110 §10.2.3: Retry-After is either delay-seconds or an
		// HTTP-date. A date in the past (or clock skew) reads as no
		// hint rather than a negative duration.
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, perr := strconv.Atoi(v); perr == nil && secs >= 0 {
				ae.RetryAfter = time.Duration(secs) * time.Second
			} else if at, perr := http.ParseTime(v); perr == nil {
				now := time.Now
				if c.Now != nil {
					now = c.Now
				}
				if d := at.Sub(now()); d > 0 {
					ae.RetryAfter = d
				}
			}
		}
		return ae
	}
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Session is a remote interactive session.
type Session struct {
	c *Client
	// ID is the server-assigned session ID (it embeds the owning
	// shard).
	ID string
	// Catalog and Shard echo the routing decision.
	Catalog string
	Shard   int
	// seq numbers this session's mutating operations 1, 2, 3, … — the
	// idempotency keys of the serving protocol. Every retry of one
	// logical operation reuses its number, so a retransmission after an
	// ambiguous failure (the response was lost, not the request) replays
	// the server's stored response instead of applying twice.
	seq atomic.Uint64
}

// nextSeq allocates the sequence number of one logical mutating
// operation.
func (s *Session) nextSeq() uint64 { return s.seq.Add(1) }

// NewSession opens a session on a catalog and returns it with the
// summary of the initial run.
func (c *Client) NewSession(ctx context.Context, catalog, query string, opt Options) (*Session, Summary, error) {
	var info wire.SessionInfo
	err := c.do(ctx, http.MethodPost, "/v1/sessions",
		wire.CreateSessionRequest{Catalog: catalog, Query: query, Options: opt}, &info)
	if err != nil {
		return nil, Summary{}, err
	}
	return &Session{c: c, ID: info.ID, Catalog: info.Catalog, Shard: info.Shard}, info.Summary, nil
}

// path builds a session endpoint path.
func (s *Session) path(suffix string) string {
	p := "/v1/sessions/" + url.PathEscape(s.ID)
	if suffix != "" {
		p += "/" + suffix
	}
	return p
}

// SetQuery replaces the whole query (the old state stays undoable).
func (s *Session) SetQuery(ctx context.Context, query string) (Summary, error) {
	var sum Summary
	err := s.c.do(ctx, http.MethodPost, s.path("query"), wire.QueryRequest{Query: query, Seq: s.nextSeq()}, &sum)
	return sum, err
}

// SetRange moves the range of the first condition on attr — the
// remote slider drag. Pass math.Inf(-1) / math.Inf(1) for open sides;
// they travel as null bounds.
func (s *Session) SetRange(ctx context.Context, attr string, lo, hi float64) (Summary, error) {
	req := wire.RangeRequest{Attr: attr, Seq: s.nextSeq()}
	if !math.IsInf(lo, -1) {
		req.Lo = &lo
	}
	if !math.IsInf(hi, 1) {
		req.Hi = &hi
	}
	var sum Summary
	err := s.c.do(ctx, http.MethodPost, s.path("range"), req, &sum)
	return sum, err
}

// SetWeight sets the weighting factor of the pred-th top-level
// selection predicate (query order, 0-based).
func (s *Session) SetWeight(ctx context.Context, pred int, weight float64) (Summary, error) {
	var sum Summary
	err := s.c.do(ctx, http.MethodPost, s.path("weight"), wire.WeightRequest{Pred: pred, Weight: weight, Seq: s.nextSeq()}, &sum)
	return sum, err
}

// Undo reverts the most recent modification.
func (s *Session) Undo(ctx context.Context) (Summary, error) {
	var sum Summary
	err := s.c.do(ctx, http.MethodPost, s.path("undo"), wire.UndoRequest{Seq: s.nextSeq()}, &sum)
	return sum, err
}

// SetPercentDisplayed fixes the displayed fraction (the paper's
// "percentage of the data displayed" control); pct must be in [0, 1],
// 0 restores the automatic display budget. Not undoable: the server
// takes no snapshot for it, so a following Undo reverts the latest
// query/range/weight edit instead.
func (s *Session) SetPercentDisplayed(ctx context.Context, pct float64) (Summary, error) {
	var sum Summary
	err := s.c.do(ctx, http.MethodPost, s.path("pct"), wire.PctRequest{Pct: pct, Seq: s.nextSeq()}, &sum)
	return sum, err
}

// Results fetches the top-k ranked rows (item index, combined
// distance, relevance factor). top < 0 means "everything displayed";
// the server caps k at the displayed count either way.
func (s *Session) Results(ctx context.Context, top int) (Results, error) {
	return s.results(ctx, top, false)
}

// ResultsWithTuples is Results plus the rendered attribute values of
// each row's underlying tuple(s).
func (s *Session) ResultsWithTuples(ctx context.Context, top int) (Results, error) {
	return s.results(ctx, top, true)
}

func (s *Session) results(ctx context.Context, top int, tuples bool) (Results, error) {
	q := url.Values{}
	if top >= 0 {
		q.Set("top", fmt.Sprint(top))
	}
	if tuples {
		q.Set("tuples", "1")
	}
	p := s.path("results")
	if len(q) > 0 {
		p += "?" + q.Encode()
	}
	var res Results
	err := s.c.do(ctx, http.MethodGet, p, nil, &res)
	return res, err
}

// Timings fetches the stage timings of the last recalculation.
func (s *Session) Timings(ctx context.Context) (Summary, error) {
	var sum Summary
	err := s.c.do(ctx, http.MethodGet, s.path("timings"), nil, &sum)
	return sum, err
}

// Close deletes the session on the server.
func (s *Session) Close(ctx context.Context) error {
	return s.c.do(ctx, http.MethodDelete, s.path(""), nil, nil)
}

// ShardStats fetches every shard's serving and shared-cache counters.
func (c *Client) ShardStats(ctx context.Context) ([]ShardStats, error) {
	var out []ShardStats
	err := c.do(ctx, http.MethodGet, "/v1/shards", nil, &out)
	return out, err
}

// Catalogs lists the served catalogs and their shard homes.
func (c *Client) Catalogs(ctx context.Context) ([]CatalogInfo, error) {
	var out []CatalogInfo
	err := c.do(ctx, http.MethodGet, "/v1/catalogs", nil, &out)
	return out, err
}

// Health fetches a node's self-report: per-shard session counts,
// quarantined catalogs, uptime.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var out Health
	err := c.do(ctx, http.MethodGet, "/v1/health", nil, &out)
	return out, err
}

// Fleet fetches the fleet-wide aggregation from a visdbrouter front
// end (membership, per-member shard ownership, summed cache counters,
// the fleet shared-hit rate).
func (c *Client) Fleet(ctx context.Context) (FleetStats, error) {
	var out FleetStats
	err := c.do(ctx, http.MethodGet, "/v1/fleet", nil, &out)
	return out, err
}
