package client

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/wire"
)

// expect builds a scripted step that asserts the request's shape
// (method, path suffix, idempotency seq; wantSeq < 0 skips the seq
// check) before answering status with body v.
func expect(t *testing.T, method, pathSuffix string, wantSeq int, status int, v any) func(*http.Request) (*http.Response, error) {
	inner := respond(status, v, nil)
	return func(req *http.Request) (*http.Response, error) {
		t.Helper()
		if req.Method != method || !strings.HasSuffix(req.URL.Path, pathSuffix) {
			t.Errorf("request %s %s, want %s …%s", req.Method, req.URL.Path, method, pathSuffix)
		}
		if wantSeq >= 0 && req.Body != nil {
			buf, _ := io.ReadAll(req.Body)
			req.Body.Close()
			var m struct {
				Seq uint64 `json:"seq"`
			}
			if err := json.Unmarshal(buf, &m); err != nil || m.Seq != uint64(wantSeq) {
				t.Errorf("%s %s carried seq %d, want %d", req.Method, req.URL.Path, m.Seq, wantSeq)
			}
			req.Body = nil
		}
		return inner(req)
	}
}

func info(id string, recalcs int) wire.SessionInfo {
	return wire.SessionInfo{ID: id, Catalog: "cat", Summary: Summary{Recalcs: recalcs}}
}

func notFound() wire.ErrorResponse {
	return wire.ErrorResponse{Error: "no session", Code: wire.CodeSessionNotFound}
}

func TestFleetSessionRecreatesAndReplays(t *testing.T) {
	rt := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		expect(t, "POST", "/v1/sessions", -1, 200, info("s0.1-aaa", 1)),
		expect(t, "POST", "/range", 1, 200, Summary{Recalcs: 2}),
		// The node dies: the next operation finds a replacement owner
		// that never knew the session.
		expect(t, "POST", "/weight", 2, 404, notFound()),
		// Recovery: recreate, replay the log under its original seq,
		// then re-issue the failed operation under ITS original seq.
		expect(t, "POST", "/v1/sessions", -1, 200, info("s1.1-bbb", 1)),
		expect(t, "POST", "/range", 1, 200, Summary{Recalcs: 2}),
		expect(t, "POST", "/weight", 2, 200, Summary{Recalcs: 3}),
	}}
	c := New("http://test")
	c.HTTP = &http.Client{Transport: rt}
	ctx := context.Background()
	fs, sum, err := NewFleetSession(ctx, []*Client{c}, "cat", "SELECT x FROM t", FleetOptions{})
	if err != nil || sum.Recalcs != 1 {
		t.Fatalf("create: %v %+v", err, sum)
	}
	if _, err := fs.SetRange(ctx, "x", 1, 2); err != nil {
		t.Fatalf("range: %v", err)
	}
	sum, err = fs.SetWeight(ctx, 0, 2)
	if err != nil {
		t.Fatalf("weight did not recover: %v", err)
	}
	// Exactly-once on the new incarnation: creation + 2 logged ops.
	if sum.Recalcs != 3 {
		t.Fatalf("recalcs after recovery: %d, want 3", sum.Recalcs)
	}
	if fs.Recoveries() != 1 {
		t.Fatalf("recoveries: %d", fs.Recoveries())
	}
	if id := fs.ID(); id != "s1.1-bbb" {
		t.Fatalf("post-recovery ID %q", id)
	}
	if got := rt.count(); got != 6 {
		t.Fatalf("requests: %d, want 6", got)
	}
}

func TestFleetSessionRotatesAcrossEndpoints(t *testing.T) {
	// Endpoint A is dead at the transport level; B serves. Creation
	// rotates A→B, and every later request sticks to B.
	dead := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		fail(io.ErrUnexpectedEOF),
	}}
	live := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		expect(t, "POST", "/v1/sessions", -1, 200, info("s0.1-aaa", 1)),
		expect(t, "POST", "/range", 1, 200, Summary{Recalcs: 2}),
	}}
	a, b := New("http://a"), New("http://b")
	a.HTTP = &http.Client{Transport: dead}
	b.HTTP = &http.Client{Transport: live}
	ctx := context.Background()
	fs, _, err := NewFleetSession(ctx, []*Client{a, b}, "cat", "SELECT x FROM t", FleetOptions{})
	if err != nil {
		t.Fatalf("create did not fail over: %v", err)
	}
	if _, err := fs.SetRange(ctx, "x", 1, 2); err != nil {
		t.Fatalf("range: %v", err)
	}
	// Rotation is not a recreation.
	if fs.Recoveries() != 0 {
		t.Fatalf("recoveries: %d", fs.Recoveries())
	}
	if dead.count() != 1 || live.count() != 2 {
		t.Fatalf("calls: dead %d live %d", dead.count(), live.count())
	}
}

func TestFleetSessionSurfacesDeterministicErrors(t *testing.T) {
	rt := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		expect(t, "POST", "/v1/sessions", -1, 200, info("s0.1-aaa", 1)),
		expect(t, "POST", "/range", 1, 409, wire.ErrorResponse{Error: "stale", Code: wire.CodeSeqConflict}),
		// A deterministically failed op's number is abandoned; the next
		// op takes the NEXT number, leaving a legal gap.
		expect(t, "POST", "/weight", 2, 200, Summary{Recalcs: 2}),
	}}
	c := New("http://test")
	c.HTTP = &http.Client{Transport: rt}
	ctx := context.Background()
	fs, _, err := NewFleetSession(ctx, []*Client{c}, "cat", "SELECT x FROM t", FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = fs.SetRange(ctx, "x", 1, 2)
	ae, ok := err.(*APIError)
	if !ok || ae.Code != wire.CodeSeqConflict {
		t.Fatalf("conflict did not surface: %v", err)
	}
	if fs.Ops() != 0 {
		t.Fatalf("failed op was logged: %d", fs.Ops())
	}
	if _, err := fs.SetWeight(ctx, 0, 2); err != nil {
		t.Fatalf("weight: %v", err)
	}
	if fs.Ops() != 1 {
		t.Fatalf("ops logged: %d", fs.Ops())
	}
}

func TestFleetSessionRecoveryBudget(t *testing.T) {
	// Every mutation finds the session gone, forever (a pathological
	// fleet that loses every incarnation instantly). The recovery
	// budget must bound the loop and surface the error.
	steps := []func(*http.Request) (*http.Response, error){
		expect(t, "POST", "/v1/sessions", -1, 200, info("s0.1-aaa", 1)),
	}
	for i := 0; i < 3; i++ {
		steps = append(steps,
			expect(t, "POST", "/range", 1, 404, notFound()),
			expect(t, "POST", "/v1/sessions", -1, 200, info("s0.2-bbb", 1)),
		)
	}
	// MaxRecoveries 2: attempt, recover, attempt, recover, attempt →
	// surface. The last scripted recreation pair stays unused.
	rt := &scriptRT{steps: steps}
	c := New("http://test")
	c.HTTP = &http.Client{Transport: rt}
	ctx := context.Background()
	fs, _, err := NewFleetSession(ctx, []*Client{c}, "cat", "SELECT x FROM t", FleetOptions{MaxRecoveries: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = fs.SetRange(ctx, "x", 1, 2)
	ae, ok := err.(*APIError)
	if !ok || ae.Code != wire.CodeSessionNotFound {
		t.Fatalf("budget exhaustion surfaced %v", err)
	}
	if fs.Recoveries() != 2 {
		t.Fatalf("recoveries: %d, want 2", fs.Recoveries())
	}
}

func TestFleetSessionCloseOnDeadNodeIsClean(t *testing.T) {
	rt := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		expect(t, "POST", "/v1/sessions", -1, 200, info("s0.1-aaa", 1)),
		expect(t, "DELETE", "/v1/sessions/s0.1-aaa", -1, 404, notFound()),
	}}
	c := New("http://test")
	c.HTTP = &http.Client{Transport: rt}
	ctx := context.Background()
	fs, _, err := NewFleetSession(ctx, []*Client{c}, "cat", "SELECT x FROM t", FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(ctx); err != nil {
		t.Fatalf("close after node death: %v", err)
	}
	if _, err := fs.SetRange(ctx, "x", 1, 2); err == nil {
		t.Fatal("closed session accepted an operation")
	}
}
