package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// scriptRT is a fully scripted http.RoundTripper: attempt i gets
// steps[i]'s outcome. Deterministic by construction — retry tests
// never depend on timing or randomness.
type scriptRT struct {
	mu    sync.Mutex
	steps []func(*http.Request) (*http.Response, error)
	calls int
}

func (rt *scriptRT) RoundTrip(req *http.Request) (*http.Response, error) {
	rt.mu.Lock()
	i := rt.calls
	rt.calls++
	rt.mu.Unlock()
	if i >= len(rt.steps) {
		return nil, fmt.Errorf("scriptRT: unexpected attempt %d", i+1)
	}
	return rt.steps[i](req)
}

func (rt *scriptRT) count() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.calls
}

// respond builds a step answering status with a JSON body and optional
// headers.
func respond(status int, v any, hdr map[string]string) func(*http.Request) (*http.Response, error) {
	return func(req *http.Request) (*http.Response, error) {
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		buf, _ := json.Marshal(v)
		h := http.Header{"Content-Type": []string{"application/json"}}
		for k, val := range hdr {
			h.Set(k, val)
		}
		return &http.Response{StatusCode: status, Header: h, Body: io.NopCloser(bytes.NewReader(buf)), Request: req}, nil
	}
}

// fail builds a step that errors at the transport layer.
func fail(err error) func(*http.Request) (*http.Response, error) {
	return func(req *http.Request) (*http.Response, error) {
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return nil, err
	}
}

// fakeClock records backoff waits without sleeping: every retry test
// runs in microseconds of real time.
type fakeClock struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (f *fakeClock) sleep(ctx context.Context, d time.Duration) error {
	f.mu.Lock()
	f.delays = append(f.delays, d)
	f.mu.Unlock()
	return ctx.Err()
}

// newTestClient wires a scripted transport and a deterministic policy:
// Rand pinned to 0.5 makes the ±50% jitter multiplier exactly 1, so
// expected delays are the raw exponential schedule.
func newTestClient(rt *scriptRT, attempts int) (*Client, *fakeClock) {
	clk := &fakeClock{}
	c := New("http://test")
	c.HTTP = &http.Client{Transport: rt}
	c.Retry = &RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    80 * time.Millisecond,
		Jitter:      0.5,
		Rand:        func() float64 { return 0.5 },
		Sleep:       clk.sleep,
	}
	return c, clk
}

func session(c *Client) *Session {
	return &Session{c: c, ID: "s0.1", Catalog: "cat"}
}

func TestRetriesOn5xxThenSucceeds(t *testing.T) {
	want := Summary{N: 42, Displayed: 7, Recalcs: 3}
	rt := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		respond(500, wire.ErrorResponse{Error: "boom"}, nil),
		respond(503, wire.ErrorResponse{Error: "shed", Code: wire.CodeSessionCap}, map[string]string{"Retry-After": "2"}),
		respond(200, want, nil),
	}}
	c, clk := newTestClient(rt, 4)
	sum, err := session(c).SetWeight(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sum != want {
		t.Fatalf("summary %+v", sum)
	}
	if rt.count() != 3 {
		t.Fatalf("attempts %d, want 3", rt.count())
	}
	// First wait: base 10ms (jitter multiplier pinned to 1). Second:
	// backoff says 20ms but the server's Retry-After hint (2s) is
	// longer and wins.
	wantDelays := []time.Duration{10 * time.Millisecond, 2 * time.Second}
	if len(clk.delays) != len(wantDelays) {
		t.Fatalf("delays %v", clk.delays)
	}
	for i, d := range wantDelays {
		if clk.delays[i] != d {
			t.Fatalf("delay[%d] = %v, want %v", i, clk.delays[i], d)
		}
	}
}

func TestNoRetryOn4xx(t *testing.T) {
	rt := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		respond(400, wire.ErrorResponse{Error: "bad query"}, nil),
	}}
	c, clk := newTestClient(rt, 4)
	_, err := session(c).SetQuery(context.Background(), "nonsense")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 400 {
		t.Fatalf("want APIError 400, got %v", err)
	}
	if rt.count() != 1 || len(clk.delays) != 0 {
		t.Fatalf("4xx must not retry: attempts=%d delays=%v", rt.count(), clk.delays)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	rt := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		respond(500, wire.ErrorResponse{Error: "1"}, nil),
		respond(500, wire.ErrorResponse{Error: "2"}, nil),
		respond(500, wire.ErrorResponse{Error: "3"}, nil),
	}}
	c, clk := newTestClient(rt, 3)
	_, err := session(c).Undo(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 500 || ae.Msg != "3" {
		t.Fatalf("want the final 500, got %v", err)
	}
	if rt.count() != 3 {
		t.Fatalf("attempts %d, want exactly the budget", rt.count())
	}
	// Exponential schedule 10, 20ms between the three attempts.
	if len(clk.delays) != 2 || clk.delays[0] != 10*time.Millisecond || clk.delays[1] != 20*time.Millisecond {
		t.Fatalf("delays %v", clk.delays)
	}
}

func TestBackoffCapsAtMaxDelay(t *testing.T) {
	steps := make([]func(*http.Request) (*http.Response, error), 6)
	for i := range steps {
		steps[i] = respond(502, wire.ErrorResponse{Error: "gw"}, nil)
	}
	rt := &scriptRT{steps: steps}
	c, clk := newTestClient(rt, 6)
	_, err := session(c).SetRange(context.Background(), "x", 1, 2)
	if err == nil {
		t.Fatal("want failure")
	}
	// 10, 20, 40, 80, then capped at 80.
	want := []time.Duration{10, 20, 40, 80, 80}
	for i := range want {
		want[i] *= time.Millisecond
	}
	if len(clk.delays) != len(want) {
		t.Fatalf("delays %v", clk.delays)
	}
	for i, d := range want {
		if clk.delays[i] != d {
			t.Fatalf("delay[%d] = %v, want %v", i, clk.delays[i], d)
		}
	}
}

func TestTransportErrorRetries(t *testing.T) {
	want := Summary{N: 5}
	rt := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		fail(errors.New("connection reset")),
		respond(200, want, nil),
	}}
	c, _ := newTestClient(rt, 2)
	sum, err := session(c).SetWeight(context.Background(), 1, 0.5)
	if err != nil || sum != want {
		t.Fatalf("sum=%+v err=%v", sum, err)
	}
}

func TestExpiredContextStopsRetrying(t *testing.T) {
	rt := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		respond(500, wire.ErrorResponse{Error: "boom"}, nil),
	}}
	c, clk := newTestClient(rt, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := session(c).Undo(ctx)
	if err == nil {
		t.Fatal("want failure")
	}
	if rt.count() > 1 {
		t.Fatalf("retried %d times with a dead context", rt.count()-1)
	}
	_ = clk
}

// TestRetriesReuseSeq is the idempotency contract from the client's
// side: every attempt of one logical operation carries the same
// sequence number, and consecutive operations number consecutively.
func TestRetriesReuseSeq(t *testing.T) {
	var seqs []uint64
	record := func(status int, v any) func(*http.Request) (*http.Response, error) {
		return func(req *http.Request) (*http.Response, error) {
			var body wire.WeightRequest
			if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
				return nil, err
			}
			req.Body.Close()
			seqs = append(seqs, body.Seq)
			buf, _ := json.Marshal(v)
			return &http.Response{StatusCode: status,
				Header: http.Header{"Content-Type": []string{"application/json"}},
				Body:   io.NopCloser(bytes.NewReader(buf)), Request: req}, nil
		}
	}
	rt := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		record(500, wire.ErrorResponse{Error: "flake"}),
		record(200, Summary{}),
		record(200, Summary{}),
	}}
	c, _ := newTestClient(rt, 3)
	s := session(c)
	if _, err := s.SetWeight(context.Background(), 0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SetWeight(context.Background(), 0, 3); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 || seqs[0] != 1 || seqs[1] != 1 || seqs[2] != 2 {
		t.Fatalf("seqs %v, want [1 1 2]", seqs)
	}
}

func TestAPIErrorCarriesCodeAndRetryAfter(t *testing.T) {
	rt := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		respond(503, wire.ErrorResponse{Error: "segment corrupt", Code: wire.CodeCatalogQuarantined},
			map[string]string{"Retry-After": "60"}),
	}}
	c := New("http://test")
	c.HTTP = &http.Client{Transport: rt}
	_, err := session(c).Results(context.Background(), 5)
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("want APIError, got %v", err)
	}
	if ae.Code != wire.CodeCatalogQuarantined || ae.RetryAfter != 60*time.Second || ae.Status != 503 {
		t.Fatalf("%+v", ae)
	}
}

// TestRetryAfterHTTPDate: RFC 9110 allows Retry-After to be an
// HTTP-date as well as delay-seconds; the client must turn a date into
// a duration against its (injectable) clock, and a past date must read
// as no hint, not a negative one.
func TestRetryAfterHTTPDate(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name   string
		header string
		want   time.Duration
	}{
		{"http-date future", now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{"http-date past", now.Add(-30 * time.Second).Format(http.TimeFormat), 0},
		{"delay-seconds still works", "45", 45 * time.Second},
		{"garbage ignored", "soon", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
				respond(503, wire.ErrorResponse{Error: "shed"},
					map[string]string{"Retry-After": tc.header}),
			}}
			c := New("http://test")
			c.HTTP = &http.Client{Transport: rt}
			c.Now = func() time.Time { return now }
			_, err := session(c).Results(context.Background(), 5)
			var ae *APIError
			if !errors.As(err, &ae) {
				t.Fatalf("want APIError, got %v", err)
			}
			if ae.RetryAfter != tc.want {
				t.Fatalf("RetryAfter = %v, want %v", ae.RetryAfter, tc.want)
			}
		})
	}
}

// TestRetriesOnNodeDown: a router answering node_down — the session's
// node died and the shard is being replaced — is a transient fleet
// condition: the client retries, pacing itself off the Retry-After
// hint so the retry lands after the shard flip.
func TestRetriesOnNodeDown(t *testing.T) {
	want := Summary{N: 9, Recalcs: 2}
	rt := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		respond(503, wire.ErrorResponse{Error: "node b is down", Code: wire.CodeNodeDown},
			map[string]string{"Retry-After": "1"}),
		respond(200, want, nil),
	}}
	c, clk := newTestClient(rt, 4)
	sum, err := session(c).SetWeight(context.Background(), 0, 2)
	if err != nil || sum != want {
		t.Fatalf("sum=%+v err=%v", sum, err)
	}
	if rt.count() != 2 {
		t.Fatalf("attempts %d, want 2", rt.count())
	}
	// The server's 1s hint beats the 10ms backoff schedule.
	if len(clk.delays) != 1 || clk.delays[0] != time.Second {
		t.Fatalf("delays %v, want [1s]", clk.delays)
	}
}

// TestRetryableKeysOnCode pins the retry decision to the
// machine-readable code, exhaustively over the protocol's vocabulary:
// transient fleet conditions retry, deterministic conflicts never do,
// and unknown codes fall back to the status class.
func TestRetryableKeysOnCode(t *testing.T) {
	cases := []struct {
		code   string
		status int
		want   bool
	}{
		{wire.CodeNodeDown, 503, true},
		{wire.CodeCatalogQuarantined, 503, true},
		{wire.CodeSessionCap, 503, true},
		{wire.CodeDeadline, 504, true},
		{wire.CodeCanceled, 504, true},
		{wire.CodeSeqConflict, 409, false},
		{wire.CodeNothingToUndo, 409, false},
		{"", 500, true},
		{"", 503, true},
		{"", 400, false},
		{"injected", 500, true}, // unknown code: status class decides
		{"injected", 404, false},
	}
	for _, tc := range cases {
		got := retryable(&APIError{Status: tc.status, Code: tc.code})
		if got != tc.want {
			t.Errorf("retryable(%d %q) = %v, want %v", tc.status, tc.code, got, tc.want)
		}
	}
	if !retryable(errors.New("connection reset")) {
		t.Error("transport errors must retry")
	}
	if retryable(nil) {
		t.Error("nil error retried")
	}
}

// TestRetryAfterDateStretchesBackoff: the duration derived from an
// HTTP-date must reach the backoff loop exactly like the integer form —
// the retry waits the server's hint when it exceeds the schedule.
func TestRetryAfterDateStretchesBackoff(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	rt := &scriptRT{steps: []func(*http.Request) (*http.Response, error){
		respond(503, wire.ErrorResponse{Error: "shed"},
			map[string]string{"Retry-After": now.Add(2 * time.Second).Format(http.TimeFormat)}),
		respond(200, Summary{N: 1}, nil),
	}}
	c, clk := newTestClient(rt, 3)
	c.Now = func() time.Time { return now }
	if _, err := session(c).Results(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
	if len(clk.delays) != 1 || clk.delays[0] != 2*time.Second {
		t.Fatalf("delays %v, want [2s]", clk.delays)
	}
}
