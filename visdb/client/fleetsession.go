package client

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// FleetOptions configures a FleetSession.
type FleetOptions struct {
	// Session carries the engine options for the underlying session
	// (and for every recreated incarnation of it).
	Session Options
	// MaxRecoveries bounds the recovery actions (session recreations
	// and endpoint rotations) one logical operation may consume before
	// its error surfaces; 0 selects DefaultMaxRecoveries, negative
	// disables recovery entirely (every failure surfaces).
	MaxRecoveries int
	// Backoff, when non-nil, paces consecutive recovery attempts with
	// its delay/sleep machinery (attempt 1 backoff each time, honoring
	// any server Retry-After hint). Nil recovers immediately — the
	// inner per-request RetryPolicy of each endpoint Client usually
	// provides enough pacing.
	Backoff *RetryPolicy
}

// DefaultMaxRecoveries is the per-operation recovery budget when
// FleetOptions.MaxRecoveries is zero.
const DefaultMaxRecoveries = 8

// Op kinds of the FleetSession operation log.
const (
	opQuery  = "query"
	opRange  = "range"
	opWeight = "weight"
	opUndo   = "undo"
	opPct    = "pct"
)

// fleetOp is one logged mutating operation: its kind, arguments, and
// the idempotency sequence number it was (and will always be) issued
// under.
type fleetOp struct {
	kind   string
	seq    uint64
	query  string
	attr   string
	lo, hi *float64
	pred   int
	weight float64
	pct    float64
}

// FleetSession is a self-healing session over a fleet: a typed wrapper
// around Session that records every mutating operation in a
// deterministic log and, when the session's node dies (the fleet
// answers session_not_found after a failover, or an endpoint stops
// answering), transparently recreates the session on the current
// placement owner and replays the log — so a node kill mid-drag
// surfaces as latency, not an error.
//
// # Recovery contract
//
// What replays: every acknowledged mutating operation (SetQuery,
// SetRange, SetWeight, Undo, SetPercentDisplayed), in order, under its
// original sequence number. Because the serving protocol applies a
// sequence number at most once per session, a replay after an
// ambiguous failure (response lost mid-recovery) can never double-
// apply: each incarnation's recalculation count is exactly 1 (the
// creation run) + the number of logged operations. An operation that
// failed deterministically (4xx) consumed its number but is not
// logged; the gap is legal and skipped forever.
//
// What can't replay: state the server never acknowledged. If the
// CREATION response is lost, the retry creates a fresh session and the
// orphan lives on the old node until the idle-TTL sweep reaps it; if a
// mutation's response is lost and recovery exhausts MaxRecoveries, the
// operation's fate on the old incarnation is unknowable — the error
// surfaces and the next successful operation starts a fresh
// incarnation from the log, which contains only acknowledged
// operations. Results read between a kill and the next operation
// reflect the replayed log, never a half-applied drag.
//
// Endpoints are typically redundant visdbrouter front ends; a
// transport failure or an exhausted retry budget against one rotates
// to the next. A FleetSession, like a Session, represents one user's
// interaction loop: methods serialize on an internal mutex.
type FleetSession struct {
	mu       sync.Mutex
	clients  []*Client
	cur      int
	catalog  string
	query    string
	opt      Options
	maxRec   int
	backoff  *RetryPolicy
	sess     *Session // nil while the session is lost
	synced   int      // log prefix applied to the current incarnation
	log      []fleetOp
	lastSeq  uint64 // last allocated sequence number (gaps stay skipped)
	closed   bool
	recovers atomic.Uint64
}

// NewFleetSession opens a self-healing session through the first
// reachable endpoint and returns it with the initial run's summary.
// At least one endpoint is required; order is the failover order.
func NewFleetSession(ctx context.Context, endpoints []*Client, catalog, query string, fo FleetOptions) (*FleetSession, Summary, error) {
	if len(endpoints) == 0 {
		return nil, Summary{}, errors.New("client: fleet session needs at least one endpoint")
	}
	fs := &FleetSession{
		clients: endpoints,
		catalog: catalog,
		query:   query,
		opt:     fo.Session,
		maxRec:  fo.MaxRecoveries,
		backoff: fo.Backoff,
	}
	if fs.maxRec == 0 {
		fs.maxRec = DefaultMaxRecoveries
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	budget := fs.maxRec
	for {
		sess, sum, err := fs.clients[fs.cur].NewSession(ctx, catalog, query, fs.opt)
		if err == nil {
			fs.sess = sess
			return fs, sum, nil
		}
		if !fs.recoverLocked(ctx, err, &budget) {
			return nil, Summary{}, err
		}
	}
}

// ID returns the current incarnation's server-assigned session ID
// (it changes across recoveries), or "" while the session is lost.
func (fs *FleetSession) ID() string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.sess == nil {
		return ""
	}
	return fs.sess.ID
}

// Recoveries returns how many times the session was recreated and
// replayed (endpoint rotations not included).
func (fs *FleetSession) Recoveries() uint64 { return fs.recovers.Load() }

// Ops returns the number of logged (acknowledged) mutating operations.
func (fs *FleetSession) Ops() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.log)
}

// SetQuery replaces the whole query.
func (fs *FleetSession) SetQuery(ctx context.Context, query string) (Summary, error) {
	return fs.apply(ctx, fleetOp{kind: opQuery, query: query})
}

// SetRange moves the range of the first condition on attr. Pass
// math.Inf(-1) / math.Inf(1) for open sides.
func (fs *FleetSession) SetRange(ctx context.Context, attr string, lo, hi float64) (Summary, error) {
	op := fleetOp{kind: opRange, attr: attr}
	if !math.IsInf(lo, -1) {
		op.lo = &lo
	}
	if !math.IsInf(hi, 1) {
		op.hi = &hi
	}
	return fs.apply(ctx, op)
}

// SetWeight sets the weighting factor of the pred-th top-level
// selection predicate.
func (fs *FleetSession) SetWeight(ctx context.Context, pred int, weight float64) (Summary, error) {
	return fs.apply(ctx, fleetOp{kind: opWeight, pred: pred, weight: weight})
}

// Undo reverts the most recent undoable modification.
func (fs *FleetSession) Undo(ctx context.Context) (Summary, error) {
	return fs.apply(ctx, fleetOp{kind: opUndo})
}

// SetPercentDisplayed fixes the displayed fraction; see
// Session.SetPercentDisplayed.
func (fs *FleetSession) SetPercentDisplayed(ctx context.Context, pct float64) (Summary, error) {
	return fs.apply(ctx, fleetOp{kind: opPct, pct: pct})
}

// Results fetches the top-k ranked rows, recovering first if the
// session was lost (the replayed state answers identically).
func (fs *FleetSession) Results(ctx context.Context, top int) (Results, error) {
	var res Results
	err := fs.read(ctx, func(s *Session) error {
		var e error
		res, e = s.Results(ctx, top)
		return e
	})
	return res, err
}

// ResultsWithTuples is Results plus rendered tuple values.
func (fs *FleetSession) ResultsWithTuples(ctx context.Context, top int) (Results, error) {
	var res Results
	err := fs.read(ctx, func(s *Session) error {
		var e error
		res, e = s.ResultsWithTuples(ctx, top)
		return e
	})
	return res, err
}

// Timings fetches the stage timings of the last recalculation.
func (fs *FleetSession) Timings(ctx context.Context) (Summary, error) {
	var sum Summary
	err := fs.read(ctx, func(s *Session) error {
		var e error
		sum, e = s.Timings(ctx)
		return e
	})
	return sum, err
}

// Close deletes the current incarnation, best-effort: a dead node
// already closed it, and the idle sweep reaps anything missed. The
// FleetSession refuses further operations either way.
func (fs *FleetSession) Close(ctx context.Context) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.closed = true
	if fs.sess == nil {
		return nil
	}
	err := fs.sess.Close(ctx)
	fs.sess = nil
	if ae, ok := err.(*APIError); ok && ae.Code == wire.CodeSessionNotFound {
		return nil // the node's death closed it for us
	}
	return err
}

// apply runs one logical mutating operation through the sync → issue →
// recover loop. The operation's sequence number is allocated once and
// reused across every retry and recovery, which is what makes the
// whole dance exactly-once.
func (fs *FleetSession) apply(ctx context.Context, op fleetOp) (Summary, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return Summary{}, errors.New("client: fleet session is closed")
	}
	fs.lastSeq++
	op.seq = fs.lastSeq
	budget := fs.maxRec
	for {
		if err := fs.syncLocked(ctx, &budget); err != nil {
			return Summary{}, err
		}
		sum, err := fs.issueLocked(ctx, op)
		if err == nil {
			fs.log = append(fs.log, op)
			fs.synced = len(fs.log)
			return sum, nil
		}
		if !fs.recoverLocked(ctx, err, &budget) {
			return Summary{}, err
		}
	}
}

// read runs a read-only call through the same sync → recover loop
// (reads carry no sequence number; they are naturally idempotent).
func (fs *FleetSession) read(ctx context.Context, fn func(s *Session) error) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return errors.New("client: fleet session is closed")
	}
	budget := fs.maxRec
	for {
		if err := fs.syncLocked(ctx, &budget); err != nil {
			return err
		}
		err := fn(fs.sess)
		if err == nil {
			return nil
		}
		if !fs.recoverLocked(ctx, err, &budget) {
			return err
		}
	}
}

// syncLocked guarantees a live incarnation with the whole log
// replayed: recreate if lost, then replay log[synced:] under the
// original sequence numbers. Replay errors feed the same recovery
// loop, so a node that dies mid-replay just moves the replay to the
// next placement owner.
func (fs *FleetSession) syncLocked(ctx context.Context, budget *int) error {
	for {
		if fs.sess == nil {
			sess, _, err := fs.clients[fs.cur].NewSession(ctx, fs.catalog, fs.query, fs.opt)
			if err != nil {
				if fs.recoverLocked(ctx, err, budget) {
					continue
				}
				return err
			}
			fs.sess, fs.synced = sess, 0
		}
		for fs.synced < len(fs.log) {
			if _, err := fs.issueLocked(ctx, fs.log[fs.synced]); err != nil {
				if fs.recoverLocked(ctx, err, budget) {
					break // restart: recreate or re-aim, then resume replay
				}
				return err
			}
			fs.synced++
		}
		if fs.sess != nil && fs.synced == len(fs.log) {
			return nil
		}
	}
}

// issueLocked sends one operation to the current incarnation under the
// operation's own sequence number. It builds the wire request directly
// rather than going through Session's mutating methods — those
// allocate a fresh number per call, which would break the replay's
// exactly-once guarantee.
func (fs *FleetSession) issueLocked(ctx context.Context, op fleetOp) (Summary, error) {
	s := fs.sess
	var sum Summary
	var err error
	switch op.kind {
	case opQuery:
		err = s.c.do(ctx, http.MethodPost, s.path("query"), wire.QueryRequest{Query: op.query, Seq: op.seq}, &sum)
	case opRange:
		err = s.c.do(ctx, http.MethodPost, s.path("range"), wire.RangeRequest{Attr: op.attr, Lo: op.lo, Hi: op.hi, Seq: op.seq}, &sum)
	case opWeight:
		err = s.c.do(ctx, http.MethodPost, s.path("weight"), wire.WeightRequest{Pred: op.pred, Weight: op.weight, Seq: op.seq}, &sum)
	case opUndo:
		err = s.c.do(ctx, http.MethodPost, s.path("undo"), wire.UndoRequest{Seq: op.seq}, &sum)
	case opPct:
		err = s.c.do(ctx, http.MethodPost, s.path("pct"), wire.PctRequest{Pct: op.pct, Seq: op.seq}, &sum)
	default:
		err = fmt.Errorf("client: unknown fleet op %q", op.kind)
	}
	return sum, err
}

// recoverLocked decides whether err is survivable and performs the
// recovery action: session_not_found (the node died and a replacement
// owns the shard — or the idle sweep reaped us) drops the incarnation
// for recreation; any other recoverable failure (transport error, a
// retryable fleet condition that exhausted the endpoint's own retry
// budget) rotates to the next endpoint. Returns false when the error
// must surface: non-recoverable, context over, or budget exhausted.
func (fs *FleetSession) recoverLocked(ctx context.Context, err error, budget *int) bool {
	if ctx.Err() != nil || *budget <= 0 {
		return false
	}
	ae, isAPI := err.(*APIError)
	switch {
	case isAPI && ae.Code == wire.CodeSessionNotFound:
		*budget--
		fs.sess, fs.synced = nil, 0
		fs.recovers.Add(1)
	case isAPI && !retryable(err):
		return false // deterministic server decision; recovery can't help
	default:
		*budget--
		fs.rotateLocked()
	}
	if fs.backoff != nil {
		var hint time.Duration
		if isAPI {
			hint = ae.RetryAfter
		}
		if serr := fs.backoff.sleep(ctx, fs.backoff.delay(1, hint)); serr != nil {
			return false
		}
	}
	return true
}

// rotateLocked re-aims the session (and future creations) at the next
// endpoint in failover order.
func (fs *FleetSession) rotateLocked() {
	if len(fs.clients) <= 1 {
		return
	}
	fs.cur = (fs.cur + 1) % len(fs.clients)
	if fs.sess != nil {
		fs.sess.c = fs.clients[fs.cur]
	}
}
