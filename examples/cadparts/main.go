// Command cadparts reproduces the similarity-retrieval scenario of
// section 4.5: a CAD database of parts described by 27 parameters,
// queried with fixed allowances. The boolean query loses "a part that
// exactly fits in all except one parameter and just misses to fulfill
// the allowance of that single parameter"; the VisDB relevance ranking
// recovers it right behind the exact matches.
package main

import (
	"fmt"
	"log"

	"repro/visdb"
)

func main() {
	tbl, truth, err := visdb.CADParts(visdb.CADConfig{Parts: 5000, Seed: 27})
	if err != nil {
		log.Fatal(err)
	}
	cat := visdb.NewCatalog()
	if err := cat.AddTable(tbl); err != nil {
		log.Fatal(err)
	}
	sql := visdb.CADQuerySQL(truth, 0)
	fmt.Printf("similarity query: 27 BETWEEN-allowances around the reference part\n")
	fmt.Printf("planted: %d exact matches + 1 near-miss (one parameter %.0f%% outside)\n\n",
		len(truth.ExactRows), 20.0)

	// Traditional boolean retrieval.
	rows, err := visdb.BooleanMatches(cat, sql)
	if err != nil {
		log.Fatal(err)
	}
	lost := true
	for _, r := range rows {
		if r == truth.NearMissRow {
			lost = false
		}
	}
	fmt.Printf("boolean query: %d rows; near-miss part found: %v\n", len(rows), !lost)

	// VisDB retrieval: rank everything.
	eng := visdb.NewEngine(cat, visdb.Options{GridW: 72, GridH: 72})
	res, err := eng.RunSQL(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VisDB: %d exact answers; top of the ranking:\n", res.Stats().NumResults)
	for rank, item := range res.TopK(len(truth.ExactRows) + 3) {
		kind := "background"
		for _, e := range truth.ExactRows {
			if item == e {
				kind = "planted exact match"
			}
		}
		if item == truth.NearMissRow {
			kind = ">>> the near-miss part boolean retrieval lost <<<"
		}
		fmt.Printf("  rank %2d: part %4d  relevance %.4f  %s\n",
			rank, item, res.Relevance()[item], kind)
	}

	img, err := res.Image(7)
	if err != nil {
		log.Fatal(err)
	}
	if err := img.SavePNG("out/cadparts.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote out/cadparts.png (overall + 27 parameter windows)")

	// Weighting: suppose parameter 1 matters little — down-weighting it
	// lets parts differing mainly in P1 climb the ranking (the
	// "finding adequate query parameters and weighting factors" task).
	s, err := visdb.NewSession(cat, visdb.Options{GridW: 72, GridH: 72}, sql)
	if err != nil {
		log.Fatal(err)
	}
	c, err := s.FindCond("P1")
	if err != nil {
		log.Fatal(err)
	}
	if err := s.SetWeight(c, 0.1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter down-weighting P1 to 0.1: %d exact answers (was %d)\n",
		s.Result().Stats().NumResults, res.Stats().NumResults)
}
