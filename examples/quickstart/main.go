// Command quickstart is the smallest end-to-end VisDB example: build a
// table, run a visual feedback query, inspect the relevance ranking and
// save the pixel visualization.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/visdb"
)

func main() {
	// A toy product table: price and rating.
	cat := visdb.NewCatalog()
	tbl, err := visdb.NewTable("Products", visdb.Schema{
		{Name: "Price", Kind: visdb.KindFloat},
		{Name: "Rating", Kind: visdb.KindFloat},
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		price := 5 + rng.ExpFloat64()*40
		rating := 1 + 4*rng.Float64()
		if err := tbl.AppendRow(visdb.Float(price), visdb.Float(rating)); err != nil {
			log.Fatal(err)
		}
	}
	if err := cat.AddTable(tbl); err != nil {
		log.Fatal(err)
	}

	// "Cheap AND well rated" — almost nothing satisfies both exactly,
	// which is precisely when visual feedback beats a boolean result.
	const sql = `SELECT Price FROM Products WHERE Price < 10 WEIGHT 1 AND Rating > 4.5 WEIGHT 2`

	// The traditional interface first: how many exact answers?
	exact, err := visdb.BooleanMatches(cat, sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("boolean query returns %d rows\n", len(exact))

	// The VisDB way: every product ranked by relevance.
	eng := visdb.NewEngine(cat, visdb.Options{GridW: 72, GridH: 72})
	res, err := eng.RunSQL(sql)
	if err != nil {
		log.Fatal(err)
	}
	st := res.Stats()
	fmt.Printf("VisDB: %d objects, %d displayed (%.1f%%), %d exact\n",
		st.NumObjects, st.NumDisplayed, st.PctDisplayed*100, st.NumResults)

	fmt.Println("\ntop 5 approximate answers (price, rating):")
	for _, item := range res.TopK(5) {
		tup, err := res.Tuple(item)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  relevance %.3f: %s, %s\n",
			res.Relevance()[item], tup.Rows[0][0], tup.Rows[0][1])
	}

	img, err := res.Image(3)
	if err != nil {
		log.Fatal(err)
	}
	if err := img.SavePNG("out/quickstart.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote out/quickstart.png — overall window + one window per predicate")
	fmt.Println("\nterminal preview of the overall result (yellow center = best):")
	fmt.Println(img.ASCII(100, 32))
}
