// Command environmental reproduces the paper's running example
// (sections 3, 4.1, 4.5): exploring a weather / air-pollution database
// with the visual feedback query
//
//	SELECT ... WHERE Temperature > 15 OR Solar_Radiation > 600 OR
//	    Humidity < 60  AND  CONNECT with-time-diff(120)
//
// It demonstrates the interactive session: the initial visualization,
// a slider modification, a weight change, drilling into the OR part
// (figure 5), and hot-spot hunting via the ranking.
package main

import (
	"fmt"
	"log"

	"repro/visdb"
)

const paperQuery = `
SELECT Temperature, Solar_Radiation, Humidity, Ozone
FROM Weather, Air-Pollution
WHERE (Temperature > 15.0 OR Solar_Radiation > 600 OR Humidity < 60)
  AND CONNECT with-time-diff(120)`

func main() {
	// One month of hourly weather, pollution sampled every 6 hours —
	// measurement intervals differ, the approximate-join scenario.
	cat, truth, err := visdb.Environmental(visdb.EnvConfig{
		Hours: 720, PollutionEvery: 6, OffsetMinutes: 0, HotSpots: 3, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	q, err := visdb.Parse(paperQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(visdb.Gradi(q)) // the figure-3 query representation

	s, err := visdb.NewSessionQuery(cat, visdb.Options{GridW: 96, GridH: 96}, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- initial result ---")
	fmt.Println(s.PanelText())
	img, err := s.Image(2)
	if err != nil {
		log.Fatal(err)
	}
	if err := img.SavePNG("out/environmental_initial.png"); err != nil {
		log.Fatal(err)
	}

	// Interactive modification: the temperature slider moves to >= 20°C
	// and the OR part gets double weight.
	c, err := s.FindCond("Temperature")
	if err != nil {
		log.Fatal(err)
	}
	if err := s.SetRange(c, 20, 1e18); err != nil {
		log.Fatal(err)
	}
	preds := visdb.Predicates(s.Query().Where)
	if err := s.SetWeight(preds[0], 2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- after slider (Temperature >= 20) and weight (OR ×2) ---")
	fmt.Println(s.PanelText())
	img, err = s.Image(2)
	if err != nil {
		log.Fatal(err)
	}
	if err := img.SavePNG("out/environmental_modified.png"); err != nil {
		log.Fatal(err)
	}

	// Figure 5: drill into the OR part.
	ws, err := s.DrillDown(preds[0], false)
	if err != nil {
		log.Fatal(err)
	}
	if err := visdb.Compose(ws, 2, 6).SavePNG("out/environmental_orpart.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote OR-part drill-down with %d windows (figure 5)\n\n", len(ws))

	// Hot-spot hunting: rank pollution measurements by exceptional
	// ozone. The generator planted a few exceptional values; the top of
	// the relevance ranking surfaces them immediately.
	hs, err := visdb.NewSession(cat, visdb.Options{GridW: 48, GridH: 48},
		`SELECT Ozone FROM Air-Pollution WHERE Ozone > 200`)
	if err != nil {
		log.Fatal(err)
	}
	res := hs.Result()
	fmt.Printf("hot-spot hunt: %d planted, query finds %d exact\n",
		len(truth.HotSpotRows), res.Stats().NumResults)
	for _, item := range res.TopK(len(truth.HotSpotRows)) {
		tup, err := res.Tuple(item)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s  ozone %s\n", tup.Rows[0][0], tup.Rows[0][3])
	}
}
