// Command twodim demonstrates the optional second visualization method
// of section 4.2 (figure 1b): two attributes assigned to the axes, the
// direction of each distance encoded by location — "for one attribute
// negative distances are arranged to the left, positive ones to the
// right and for the other attribute negative distances are arranged to
// the bottom, positive ones to the top" — and the absolute value by
// color.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/visdb"
)

func main() {
	// Apartments: the user wants ~80 m² for ~1500 €/month. The 2D
	// arrangement shows at a glance whether a near miss is too small,
	// too big, too cheap or too expensive.
	cat := visdb.NewCatalog()
	tbl, err := visdb.NewTable("Flats", visdb.Schema{
		{Name: "Size", Kind: visdb.KindFloat},
		{Name: "Rent", Kind: visdb.KindFloat},
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 3000; i++ {
		size := 30 + rng.ExpFloat64()*40
		rent := 400 + size*12 + rng.NormFloat64()*220 // rent tracks size
		if err := tbl.AppendRow(visdb.Float(size), visdb.Float(rent)); err != nil {
			log.Fatal(err)
		}
	}
	if err := cat.AddTable(tbl); err != nil {
		log.Fatal(err)
	}

	const sql = `SELECT Size FROM Flats WHERE Size BETWEEN 75 AND 85 AND Rent BETWEEN 1400 AND 1600`

	eng := visdb.NewEngine(cat, visdb.Options{
		GridW: 96, GridH: 96,
		Arrangement: visdb.Arrange2D,
		AxisX:       "Size", // left = too small, right = too big
		AxisY:       "Rent", // bottom = too cheap, top = too expensive
	})
	res, err := eng.RunSQL(sql)
	if err != nil {
		log.Fatal(err)
	}
	st := res.Stats()
	fmt.Printf("%d flats, %d displayed, %d exact matches\n",
		st.NumObjects, st.NumDisplayed, st.NumResults)
	fmt.Println("window semantics: yellow center = fits both ranges;")
	fmt.Println("  left/right of center = too small / too big;")
	fmt.Println("  below/above center  = too cheap / too expensive;")
	fmt.Println("  color = how far outside the ranges")

	img, err := res.Image(3)
	if err != nil {
		log.Fatal(err)
	}
	if err := img.SavePNG("out/twodim.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote out/twodim.png")

	// The spiral arrangement of the same query, for comparison.
	spiral := visdb.NewEngine(cat, visdb.Options{GridW: 96, GridH: 96})
	res2, err := spiral.RunSQL(sql)
	if err != nil {
		log.Fatal(err)
	}
	img2, err := res2.Image(3)
	if err != nil {
		log.Fatal(err)
	}
	if err := img2.SavePNG("out/twodim_spiral.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote out/twodim_spiral.png (spiral arrangement of the same query)")
}
