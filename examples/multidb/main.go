// Command multidb reproduces the multi-database scenario of
// section 4.5: "multi-database systems where it is often a problem to
// find corresponding data items in multiple independent databases. If a
// distance function for the two attributes to be joined can be defined,
// our system will help the user to identify closely related data
// items." Two person databases share entities under misspelled names
// and slightly shifted birth years; the approximate join on the edit
// distance of names combined with the birth-year difference surfaces
// the true correspondences.
package main

import (
	"fmt"
	"log"

	"repro/visdb"
)

func main() {
	cat, truth, err := visdb.MultiDB(visdb.MultiDBConfig{People: 400, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	a, _ := cat.Table("PersonsA")
	b, _ := cat.Table("PersonsB")
	fmt.Printf("PersonsA: %d rows, PersonsB: %d rows, true correspondences: %d\n\n",
		a.NumRows(), b.NumRows(), len(truth.Matches))

	// An exact equality join on names finds almost nothing (the names
	// are misspelled); count it via the boolean path.
	eng := visdb.NewEngine(cat, visdb.Options{GridW: 96, GridH: 96})
	res, err := eng.RunSQL(`SELECT Name FROM PersonsA, PersonsB
		WHERE CONNECT similar-name AND CONNECT same-birth-year`)
	if err != nil {
		log.Fatal(err)
	}
	st := res.Stats()
	fmt.Printf("cross product: %d pairs considered, %d exact (identical name + year)\n",
		st.NumObjects, st.NumResults)

	// Precision of the approximate join: how many of the top-|truth|
	// ranked pairs are true correspondences?
	k := len(truth.Matches)
	hits := 0
	for _, item := range res.TopK(k) {
		left, right, ok := res.Pair(item)
		if ok && truth.Matches[left] == right {
			hits++
		}
	}
	fmt.Printf("top-%d precision of the approximate join: %.1f%%\n",
		k, 100*float64(hits)/float64(k))

	fmt.Println("\nsample of the best-matching pairs:")
	for _, item := range res.TopK(8) {
		left, right, ok := res.Pair(item)
		if !ok {
			continue
		}
		an, _ := a.Value(left, "Name")
		bn, _ := b.Value(right, "FullName")
		ay, _ := a.Value(left, "Born")
		by, _ := b.Value(right, "YearOfBirth")
		marker := ""
		if truth.Matches[left] == right {
			marker = "  (true match)"
		}
		fmt.Printf("  %-14s %-6s ~ %-14s %-6s  relevance %.3f%s\n",
			an, ay, bn, by, res.Relevance()[item], marker)
	}

	img, err := res.Image(3)
	if err != nil {
		log.Fatal(err)
	}
	if err := img.SavePNG("out/multidb.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote out/multidb.png")
}
